// saim_shard — sharded multi-process serving front door.
//
// Speaks the docs/PROTOCOL.md JSONL wire format on both sides: clients
// talk to saim_shard exactly as they would to `saim_serve --stream`, and
// saim_shard spawns and supervises N `saim_serve --stream` child
// processes (one per shard) over pipes, routing each job by consistent
// hashing on its canonical problem fingerprint. All jobs over one
// instance land on one shard, so that shard's result cache, coalescer,
// same-instance batcher and warm-start pool stay hot for its keyslice —
// the front door multiplies PR 3's single-process wins by the shard
// count. The routing/remapping brain is service/shard_router.{hpp,cpp};
// the pipe plumbing is service/process_child.{hpp,cpp}.
//
// Semantics (all inherited from the router):
//   * results stream in global completion order, each accepted job tagged
//     with a global "seq" (per-shard seqs are remapped; rejected lines
//     carry none);
//   * per-shard bounded in-flight windows give backpressure — a slow
//     shard throttles only its own keyslice;
//   * children are health-probed with {"cmd":"ping"} control lines; a
//     child that stops answering is killed, and any child that dies is
//     dropped from the ring with its unanswered jobs requeued onto the
//     next live shard (zero lost jobs across a crash);
//   * on EOF the front door drains every shard (close stdin, collect
//     remaining results) before exiting.
//
// Example — route a stream across 4 shards, 1 worker each:
//   saim_shard --shards 4 --workers 1 < jobs.jsonl > results.jsonl
//
// Exit status mirrors saim_serve: 0 all jobs ok, 1 any error line, 2 bad
// invocation.
#include <sys/wait.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "service/process_child.hpp"
#include "service/shard_driver.hpp"
#include "service/shard_router.hpp"
#include "util/cli.hpp"

namespace {

using namespace saim;

/// saim_serve is expected to sit next to saim_shard unless --serve says
/// otherwise.
std::string sibling_serve_path(const char* argv0) {
  const std::string self(argv0 ? argv0 : "");
  const auto slash = self.rfind('/');
  if (slash == std::string::npos) return "saim_serve";  // rely on PATH
  return self.substr(0, slash + 1) + "saim_serve";
}

/// Mirrors the execvp lookup so a mistyped --serve fails with one clear
/// exit-2 diagnostic instead of N silent child exec failures.
bool executable_exists(const std::string& serve) {
  if (serve.find('/') != std::string::npos) {
    return ::access(serve.c_str(), X_OK) == 0;
  }
  const char* path = std::getenv("PATH");
  if (!path) return false;
  std::string dirs(path);
  std::size_t start = 0;
  while (start <= dirs.size()) {
    const std::size_t colon = dirs.find(':', start);
    std::string dir =
        dirs.substr(start, colon == std::string::npos ? std::string::npos
                                                      : colon - start);
    if (dir.empty()) dir = ".";  // empty PATH component = cwd, per execvp
    if (::access((dir + "/" + serve).c_str(), X_OK) == 0) return true;
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("saim_shard",
                       "shard a JSONL solve-job stream across saim_serve "
                       "worker processes");
  args.add_flag("shards", "saim_serve child processes to spawn", "2")
      .add_flag("serve", "path to the saim_serve binary (default: next to "
                "this one)", "")
      .add_flag("input", "job stream path, - for stdin", "-")
      .add_flag("output", "result stream path, - for stdout", "-")
      .add_flag("workers", "solver worker threads PER SHARD (0 = hardware)",
                "1")
      .add_flag("cache", "result-cache capacity per shard (0 disables)",
                "256")
      .add_flag("max-batch",
                "same-instance jobs fused per model build per shard", "8")
      .add_bool("warm-start",
                "make \"warm_start\": true the per-job default on every "
                "shard")
      .add_flag("window", "max in-flight jobs per shard", "32")
      .add_flag("ping-ms",
                "health-probe interval; a shard missing 5 pongs is killed "
                "and its jobs requeued (0 disables)",
                "1000")
      .add_bool("stats", "per-shard routing summary on stderr at exit");
  if (!args.parse(argc, argv)) return args.error().empty() ? 0 : 2;

  const auto nonneg = [&](const char* flag) {
    return static_cast<std::size_t>(
        std::max<std::int64_t>(0, args.get_int(flag)));
  };
  service::RouterOptions router_options;
  router_options.shards = std::max<std::size_t>(1, nonneg("shards"));
  router_options.window = std::max<std::size_t>(1, nonneg("window"));
  const long ping_ms = static_cast<long>(nonneg("ping-ms"));

  std::string serve = args.get("serve");
  if (serve.empty()) serve = sibling_serve_path(argv[0]);
  if (!executable_exists(serve)) {
    std::fprintf(stderr, "saim_shard: cannot execute '%s'\n", serve.c_str());
    return 2;
  }

  std::ifstream file_in;
  const std::string input = args.get("input");
  if (input != "-") {
    file_in.open(input);
    if (!file_in) {
      std::fprintf(stderr, "saim_shard: cannot open '%s'\n", input.c_str());
      return 2;
    }
  }
  std::istream& in = input == "-" ? std::cin : file_in;

  std::ofstream file_out;
  const std::string output = args.get("output");
  if (output != "-") {
    file_out.open(output);
    if (!file_out) {
      std::fprintf(stderr, "saim_shard: cannot open '%s'\n", output.c_str());
      return 2;
    }
  }
  std::ostream& out = output == "-" ? std::cout : file_out;

  // Spawn the fleet. Each shard is a full saim_serve in --stream mode.
  std::vector<std::string> child_args = {
      serve,
      "--stream",
      "--workers", args.get("workers"),
      "--cache", args.get("cache"),
      "--max-batch", args.get("max-batch"),
  };
  if (args.get_bool("warm-start")) child_args.push_back("--warm-start");
  std::vector<std::unique_ptr<service::ProcessChild>> children;
  children.reserve(router_options.shards);
  for (std::size_t s = 0; s < router_options.shards; ++s) {
    children.push_back(
        std::make_unique<service::ProcessChild>(child_args));
  }
  service::ShardRouter router(router_options);

  // Memory backstops. The routed-jobs side: stop parsing/routing when
  // this many jobs wait for a window slot. The raw-lines side: the reader
  // thread blocks once this many unconsumed lines are buffered, so a fast
  // producer cannot balloon RSS with the whole stream.
  const std::size_t high_water = router_options.shards *
                                 router_options.window * 4;
  const std::size_t line_buffer_cap = std::max<std::size_t>(high_water * 4,
                                                            4096);

  // Input on its own thread so a slow producer never stalls the pumps
  // (same pattern as saim_serve's emitter, mirrored to the read side).
  std::mutex lines_mutex;
  std::condition_variable lines_cv;  ///< reader waits for buffer room
  std::deque<std::string> lines;
  bool input_done = false;
  std::thread reader([&] {
    std::string line;
    while (std::getline(in, line)) {
      std::unique_lock<std::mutex> lock(lines_mutex);
      lines_cv.wait(lock, [&] { return lines.size() < line_buffer_cap; });
      lines.push_back(std::move(line));
    }
    std::lock_guard<std::mutex> lock(lines_mutex);
    input_done = true;
  });

  const auto emit = [&](const std::vector<std::string>& emitted) {
    if (emitted.empty()) return;
    for (const auto& l : emitted) out << l << "\n";
    out.flush();
  };

  std::size_t line_no = 0;
  auto last_ping = std::chrono::steady_clock::now();
  std::vector<int> missed_pongs(router_options.shards, 0);
  std::vector<bool> ping_outstanding(router_options.shards, false);

  for (;;) {
    // Ingest as much input as backpressure allows.
    bool done;
    for (;;) {
      std::string line;
      {
        std::lock_guard<std::mutex> lock(lines_mutex);
        done = input_done && lines.empty();
        if (lines.empty() || router.total_pending() >= high_water) break;
        line = std::move(lines.front());
        lines.pop_front();
      }
      lines_cv.notify_one();
      ++line_no;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      emit(router.accept_line(line, line_no));
    }

    emit(service::pump_shards(router, children, 2));
    for (std::size_t s = 0; s < children.size(); ++s) {
      // A child that exec-failed or crashed instantly deserves a loud
      // note; the router has already requeued or errored its jobs.
      if (children[s] && !router.alive(s) && children[s]->eof() &&
          !children[s]->running() && WIFEXITED(children[s]->exit_status()) &&
          WEXITSTATUS(children[s]->exit_status()) == 127) {
        std::fprintf(stderr, "saim_shard: shard %zu could not exec '%s'\n",
                     s, serve.c_str());
        children[s].reset();
      }
    }
    // With no live child there is no pollable fd, so pump_shards returns
    // immediately; sleep instead of spinning while input stays open.
    if (router.live_shards() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    // Health probes: a shard missing 5 consecutive pongs while its
    // process still looks alive is wedged — kill it; EOF then routes its
    // jobs to the survivors. Only intervals with a ping actually
    // outstanding count as misses.
    if (ping_ms > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_ping >= std::chrono::milliseconds(ping_ms)) {
        last_ping = now;
        for (std::size_t s = 0; s < children.size(); ++s) {
          if (!children[s] || !router.alive(s)) continue;
          if (router.take_pong(s)) {
            missed_pongs[s] = 0;
          } else if (ping_outstanding[s] && ++missed_pongs[s] >= 5) {
            std::fprintf(stderr,
                         "saim_shard: shard %zu unresponsive, killing\n", s);
            children[s]->kill(SIGKILL);
            ping_outstanding[s] = false;
            continue;
          }
          children[s]->send_line(R"({"cmd":"ping"})");
          ping_outstanding[s] = true;
        }
      }
    }

    if (done && router.idle()) break;
  }

  // Graceful drain: close every child's stdin; saim_serve exits after
  // emitting what little may remain (router.idle() already guarantees
  // every job was answered, so this is just process teardown).
  for (auto& child : children) {
    if (child) child->close_stdin();
  }
  for (std::size_t s = 0; s < children.size(); ++s) {
    if (!children[s]) continue;
    for (int spins = 0; children[s]->running() && spins < 2000; ++spins) {
      children[s]->read_lines();  // let it flush and reach EOF
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (children[s]->running()) children[s]->kill(SIGKILL);
  }
  reader.join();

  if (args.get_bool("stats")) {
    const auto& s = router.stats();
    std::fprintf(stderr,
                 "saim_shard: %llu accepted, %llu emitted, %llu rejected, "
                 "%llu requeued, %llu orphaned, %zu/%zu shards alive\n",
                 static_cast<unsigned long long>(s.accepted),
                 static_cast<unsigned long long>(s.emitted),
                 static_cast<unsigned long long>(s.rejected),
                 static_cast<unsigned long long>(s.requeued),
                 static_cast<unsigned long long>(s.orphaned),
                 router.live_shards(), children.size());
    for (std::size_t i = 0; i < s.routed_per_shard.size(); ++i) {
      std::fprintf(stderr, "  shard %zu: %llu jobs routed%s\n", i,
                   static_cast<unsigned long long>(s.routed_per_shard[i]),
                   router.alive(i) ? "" : " (down)");
    }
  }
  return router.any_error() ? 1 : 0;
}
