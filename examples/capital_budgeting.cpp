// Capital budgeting as a multidimensional knapsack — one of the paper's
// motivating applications ("constraints on limited resources are found in
// capital budgeting, portfolio optimization, or production planning").
//
// A firm must pick a subset of candidate projects. Each project has an
// expected payoff and consumes budget in each of M planning periods; each
// period has a fixed budget cap. This is exactly MKP (eq. 14). The example
// solves the same instance three ways and cross-checks them:
//   * SAIM on a p-bit machine (paper parameters: P=5dN, eta=0.05),
//   * the Chu–Beasley genetic algorithm,
//   * exact branch & bound (the intlinprog stand-in) as ground truth.
#include <cstdio>

#include "anneal/backend.hpp"
#include "core/penalty_method.hpp"
#include "core/saim_solver.hpp"
#include "exact/mkp_branch_bound.hpp"
#include "ga/chu_beasley.hpp"
#include "problems/mkp.hpp"
#include "util/timer.hpp"

int main() {
  using namespace saim;

  // 40 candidate projects over 4 annual budget cycles. Generated with the
  // Chu–Beasley scheme: per-period costs U[1,1000], payoff correlated with
  // total cost (realistic: expensive projects tend to pay more), budgets
  // covering half the total demand.
  problems::MkpGeneratorParams gen;
  gen.n = 40;
  gen.m = 4;
  gen.seed = 2024;
  gen.tightness = 0.5;
  const auto portfolio = problems::generate_mkp(gen);
  std::printf("capital budgeting: %zu projects, %zu budget periods\n",
              portfolio.n(), portfolio.m());
  for (std::size_t p = 0; p < portfolio.m(); ++p) {
    std::printf("  period %zu budget: %lld\n", p,
                static_cast<long long>(portfolio.capacity(p)));
  }

  // --- Ground truth.
  util::WallTimer timer;
  const auto exact = exact::solve_mkp_bnb(portfolio);
  std::printf("\nB&B optimum: payoff %lld (%s, %.2fs, %llu nodes)\n",
              static_cast<long long>(exact.best_profit),
              exact.proven_optimal ? "proven" : "budget hit",
              exact.seconds, static_cast<unsigned long long>(exact.nodes));

  // --- SAIM.
  const auto mapping = problems::mkp_to_problem(portfolio);
  anneal::PBitBackend backend(pbit::Schedule::linear(50.0), 1000);
  core::SaimOptions opts;
  opts.iterations = 800;
  // The paper's Table-I eta of 0.05 is sized for 250-item instances and
  // ~5000 iterations; this 40-project portfolio tolerates a larger dual
  // step, which converges well within the example's 800 iterations.
  opts.eta = 0.2;
  opts.penalty_alpha = 5.0;
  opts.seed = 7;
  timer.reset();
  core::SaimSolver solver(mapping.problem, backend, opts);
  const auto saim = solver.solve(core::make_mkp_evaluator(portfolio));
  const double saim_seconds = timer.seconds();

  // --- GA.
  ga::GaOptions ga_opts;
  ga_opts.children = 30000;
  ga_opts.seed = 3;
  timer.reset();
  const auto ga_result = ga::solve_mkp_ga(portfolio, ga_opts);
  const double ga_seconds = timer.seconds();

  std::printf("\n%-22s %10s %10s %8s\n", "method", "payoff", "gap-to-opt",
              "time(s)");
  auto report = [&](const char* name, double payoff, double seconds) {
    const double gap =
        100.0 * (static_cast<double>(exact.best_profit) - payoff) /
        static_cast<double>(exact.best_profit);
    std::printf("%-22s %10.0f %9.2f%% %8.2f\n", name, payoff, gap, seconds);
  };
  report("B&B (exact)", static_cast<double>(exact.best_profit),
         exact.seconds);
  report("SAIM (p-bit IM)", saim.found_feasible ? -saim.best_cost : 0.0,
         saim_seconds);
  report("Chu-Beasley GA", static_cast<double>(ga_result.best_profit),
         ga_seconds);

  if (saim.found_feasible) {
    std::printf("\nSAIM-selected portfolio (%zu of %zu projects):",
                static_cast<std::size_t>(
                    std::count(saim.best_x.begin(), saim.best_x.end(), 1)),
                portfolio.n());
    for (std::size_t j = 0; j < portfolio.n(); ++j) {
      if (saim.best_x[j]) std::printf(" %zu", j);
    }
    std::printf("\nfeasibility of measured samples: %.1f%% "
                "(multiple constraints are hard to satisfy — the paper "
                "reports ~5%% on MKP)\n",
                100.0 * saim.feasibility_rate());
  }
  return 0;
}
