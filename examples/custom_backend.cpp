// "Compatible with any programmable IM": plugging a custom solver into
// SAIM. The paper's Algorithm 1 only needs an inner minimizer for the
// current Lagrangian; anything that implements IsingSolverBackend works.
//
// This example implements a deliberately simple backend — greedy
// steepest-descent local search with random restarts (a "zero-temperature
// Ising machine") — and runs the same QKP through it, the p-bit machine,
// and parallel tempering, printing a side-by-side comparison.
#include <cstdio>
#include <memory>

#include "anneal/backend.hpp"
#include "anneal/parallel_tempering.hpp"
#include "core/penalty_method.hpp"
#include "core/saim_solver.hpp"
#include "ising/adjacency.hpp"
#include "ising/local_field.hpp"
#include "problems/qkp.hpp"

namespace {

using namespace saim;

/// Steepest-descent local search with random restarts. Each run() does
/// `restarts` descents to local minima and reads the last one reached —
/// mimicking how a one-shot hardware annealer would be sampled.
class LocalSearchBackend final : public anneal::IsingSolverBackend {
 public:
  LocalSearchBackend(std::size_t restarts, std::size_t max_descent_sweeps)
      : restarts_(restarts), max_descent_sweeps_(max_descent_sweeps) {}

  void bind(const ising::IsingModel& model) override {
    model_ = &model;
    adjacency_ = std::make_unique<ising::Adjacency>(model);
  }

  anneal::RunResult run(util::Xoshiro256pp& rng) override {
    anneal::RunResult result;
    result.best_energy = 1e300;
    // The incremental engine every in-repo backend uses is public API:
    // field(i) is an O(1) read, flip(m, i) an O(deg) update.
    ising::LocalFieldState lfs(*model_, *adjacency_);
    for (std::size_t r = 0; r < restarts_; ++r) {
      ising::Spins m(model_->n());
      for (auto& s : m) s = rng.bernoulli(0.5) ? 1 : -1;
      lfs.reset(m);
      // Descend: flip any spin that lowers H until no such spin exists.
      for (std::size_t sweep = 0; sweep < max_descent_sweeps_; ++sweep) {
        bool improved = false;
        for (std::size_t i = 0; i < m.size(); ++i) {
          if (lfs.flip_delta(m, i) < 0.0) {
            lfs.flip(m, i);
            improved = true;
          }
        }
        result.sweeps++;
        if (!improved) break;
      }
      result.last = m;
      result.last_energy = lfs.energy();
      if (lfs.energy() < result.best_energy) {
        result.best_energy = lfs.energy();
        result.best = m;
      }
    }
    return result;
  }

  [[nodiscard]] std::size_t sweeps_per_run() const override {
    return restarts_ * max_descent_sweeps_;
  }
  [[nodiscard]] std::string name() const override {
    return "greedy-local-search";
  }

 private:
  std::size_t restarts_;
  std::size_t max_descent_sweeps_;
  const ising::IsingModel* model_ = nullptr;
  std::unique_ptr<ising::Adjacency> adjacency_;
};

core::SolveResult run_with(anneal::IsingSolverBackend& backend,
                           const problems::QkpInstance& inst,
                           std::size_t iterations) {
  const auto mapping = problems::qkp_to_problem(inst);
  core::SaimOptions opts;
  opts.iterations = iterations;
  opts.eta = 20.0;
  opts.penalty_alpha = 2.0;
  opts.seed = 13;
  core::SaimSolver solver(mapping.problem, backend, opts);
  return solver.solve(core::make_qkp_evaluator(inst));
}

}  // namespace

int main() {
  const auto inst = problems::make_paper_qkp(60, 50, 1);
  std::printf("QKP %s through three interchangeable inner solvers\n\n",
              inst.name().c_str());

  anneal::PBitBackend pbit(pbit::Schedule::linear(10.0), 1000);
  LocalSearchBackend local(/*restarts=*/5, /*max_descent_sweeps=*/50);
  anneal::PtOptions pt_opts;
  pt_opts.replicas = 8;
  pt_opts.beta_min = 0.3;
  pt_opts.beta_max = 15.0;
  pt_opts.sweeps = 125;  // 8 x 125 = 1000 MCS per run, same budget
  anneal::ParallelTemperingBackend pt(pt_opts);

  struct Row {
    const char* label;
    core::SolveResult result;
  };
  std::vector<Row> rows;
  rows.push_back({"p-bit annealer (paper)", run_with(pbit, inst, 200)});
  rows.push_back({"greedy local search", run_with(local, inst, 200)});
  rows.push_back({"parallel tempering", run_with(pt, inst, 200)});

  double reference = 0.0;
  for (const auto& row : rows) {
    if (row.result.found_feasible) {
      reference = std::min(reference, row.result.best_cost);
    }
  }

  std::printf("%-24s %10s %10s %8s %12s\n", "backend", "best", "accuracy",
              "feas%", "MCS");
  for (const auto& row : rows) {
    std::printf("%-24s %10.0f %9.2f%% %7.1f%% %12zu\n", row.label,
                row.result.found_feasible ? row.result.best_cost : 0.0,
                row.result.found_feasible && reference != 0.0
                    ? core::accuracy_percent(row.result.best_cost, reference)
                    : 0.0,
                100.0 * row.result.feasibility_rate(),
                row.result.total_sweeps);
  }
  std::printf("\nall three run the identical outer loop — only the inner "
              "minimizer of L(x; lambda) differs.\n");
  return 0;
}
