// The paper's introductory claim in runnable form: Ising machines natively
// solve unconstrained problems like max-cut (section I: minimizing the
// Ising Hamiltonian with W_ij = -J_ij maximizes the cut). No penalties, no
// multipliers — just the p-bit machine annealing the max-cut Ising image.
//
// Compares the p-bit machine against the greedy 1/2-approximation, 1-opt
// local search, and tabu search on random and structured graphs, and
// reports time-to-solution statistics over repeated runs.
#include <cstdio>

#include "anneal/tabu.hpp"
#include "core/tts.hpp"
#include "ising/graph.hpp"
#include "pbit/pbit_machine.hpp"
#include "problems/maxcut.hpp"
#include "util/timer.hpp"

int main() {
  using namespace saim;

  struct Case {
    const char* label;
    ising::Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"G(60, 0.3) uniform", ising::random_gnp_graph(60, 0.3, 7)});
  cases.push_back(
      {"G(60, 0.5) weighted",
       ising::random_gnp_graph(60, 0.5, 11, 0.5, 3.0)});
  cases.push_back({"8x8 torus grid", ising::torus_grid_graph(8, 8)});

  for (auto& c : cases) {
    const auto& g = c.graph;
    std::printf("== %s: %zu vertices, %zu edges, total weight %.1f ==\n",
                c.label, g.num_vertices(), g.num_edges(), g.total_weight());

    // Greedy + local search baselines.
    auto side = problems::maxcut_greedy(g);
    const double greedy_cut = g.cut_value(side);
    const double ls_cut = problems::maxcut_local_search(g, side);

    // p-bit machine: repeated annealing runs.
    const auto model = problems::maxcut_to_ising(g);
    pbit::PBitMachine machine(model);
    util::Xoshiro256pp rng(3);
    pbit::AnnealOptions opts;
    opts.sweeps = 500;
    opts.track_best = true;
    const std::size_t runs = 50;
    double best_pbit = 0.0;
    std::vector<double> run_cuts;
    util::WallTimer timer;
    for (std::size_t r = 0; r < runs; ++r) {
      const auto result =
          machine.anneal(pbit::Schedule::linear(4.0), opts, rng);
      const double cut = -result.best_energy;
      run_cuts.push_back(-cut);  // negative for the TTS cost convention
      best_pbit = std::max(best_pbit, cut);
    }
    const double per_run_seconds = timer.seconds() / runs;

    // Tabu baseline.
    anneal::TabuOptions topts;
    topts.steps = 500 * g.num_vertices();  // same flip budget as the anneal
    anneal::TabuSearch tabu(model, topts);
    const double tabu_cut = -tabu.run(rng).best_energy;

    const double best_any =
        std::max({best_pbit, ls_cut, tabu_cut, greedy_cut});
    std::printf("%-28s %10s %10s\n", "method", "cut", "vs-best");
    auto row = [&](const char* name, double cut) {
      std::printf("%-28s %10.1f %9.2f%%\n", name, cut,
                  100.0 * cut / best_any);
    };
    row("greedy 1/2-approx", greedy_cut);
    row("greedy + 1-opt local", ls_cut);
    row("tabu search", tabu_cut);
    row("p-bit IM (best of 50)", best_pbit);

    const auto tts = core::time_to_solution_from_costs(
        run_cuts, -best_any, per_run_seconds);
    if (tts.defined) {
      std::printf("p-bit TTS(99%%) to best-known: %.3fs "
                  "(p=%.2f per %zu-sweep run)\n\n",
                  tts.tts, tts.success_probability, opts.sweeps);
    } else {
      std::printf("p-bit never hit best-known in %zu runs "
                  "(best-known came from another method)\n\n",
                  runs);
    }
  }
  return 0;
}
