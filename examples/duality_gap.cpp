// The paper's Fig. 2 story, computed exactly: how the Lagrange relaxation
// closes the duality gap that a too-small penalty leaves open.
//
// On a small QKP (enumerable), we compute for a sweep of penalties P:
//   * LB_P  = min_x E(x)        — penalty-method bound (eq. 4)
//   * whether argmin E is feasible
//   * LB_L  = max_lambda min_x L(x; lambda) — the Lagrangian dual value,
//     obtained by running SAIM with the *exact* inner minimizer (pure
//     subgradient dual ascent) and taking the best bound along the path
// and compare both against OPT from exhaustive enumeration. The printout
// shows exactly the paper's message: for P below the critical value the
// penalty bound sits strictly below OPT at an unfeasible minimizer, while
// the adaptive lambda closes (or nearly closes) the gap at the same P.
#include <cstdio>

#include "anneal/exact_backend.hpp"
#include "core/penalty_method.hpp"
#include "core/saim_solver.hpp"
#include "exact/exhaustive.hpp"
#include "lagrange/lagrangian_model.hpp"
#include "problems/qkp.hpp"

int main() {
  using namespace saim;

  // Handcrafted 10-item QKP with a small capacity so the slack-extended
  // system stays fully enumerable (10 + 4 slack bits = 16k states).
  const std::size_t n = 10;
  std::vector<std::int64_t> values = {64, 21, 90, 35, 50, 12, 78, 44, 9, 67};
  std::vector<std::int64_t> pairs(n * n, 0);
  auto pair = [&](std::size_t i, std::size_t j, std::int64_t w) {
    pairs[i * n + j] = w;
    pairs[j * n + i] = w;
  };
  pair(0, 2, 40);
  pair(1, 3, 25);
  pair(2, 6, 55);
  pair(4, 9, 30);
  pair(5, 7, 15);
  pair(6, 9, 45);
  const std::vector<std::int64_t> weights = {4, 2, 7, 3, 5, 2, 6, 4, 1, 5};
  const problems::QkpInstance inst("toy-10", values, pairs, weights, 15);
  const auto mapping = problems::qkp_to_problem(inst);
  const std::size_t total = mapping.problem.n();
  std::printf("QKP %s lowered to %zu binaries (10 items + %zu slack)\n",
              inst.name().c_str(), total, mapping.slack.num_bits());

  // OPT over the full slack-extended equality system, in normalized units.
  const auto opt = exact::exhaustive_minimize(
      total, [&](std::span<const std::uint8_t> x) {
        exact::Verdict v;
        v.feasible = mapping.problem.max_violation(x) <= 1e-9;
        v.cost = mapping.problem.objective_value(x);
        return v;
      });
  std::printf("OPT (normalized) = %.4f, feasible configs = %llu\n\n",
              opt.best_cost,
              static_cast<unsigned long long>(opt.feasible_count));

  std::printf("%8s %12s %10s %12s %10s\n", "P", "LB_P", "argmin", "LB_L",
              "gap-left");
  for (const double penalty : {0.1, 0.5, 1.0, 2.0, 5.0, 15.0, 40.0}) {
    // Penalty bound: exact min of E = f + P||g||^2.
    lagrange::LagrangianModel model(mapping.problem, penalty);
    const auto emin = exact::exhaustive_minimize(
        total, [&](std::span<const std::uint8_t> x) {
          return exact::Verdict{true, model.qubo().energy(x)};
        });
    const bool argmin_feasible =
        mapping.problem.max_violation(emin.best_x) <= 1e-9;

    // Dual bound via exact-inner-solver SAIM: each iteration's
    // L(x_k; lambda_k) with the exact minimizer IS LB_L(lambda_k); the
    // maximum along the ascent approximates max_lambda LB_L.
    anneal::ExactBackend backend;
    core::SaimOptions opts;
    opts.iterations = 400;
    opts.eta = 2.0;
    opts.penalty = penalty;
    opts.record_history = true;
    core::SaimSolver solver(mapping.problem, backend, opts);
    const auto result = solver.solve();
    double dual_bound = -1e300;
    for (const auto& rec : result.history) {
      dual_bound = std::max(dual_bound, rec.lagrangian_energy);
    }

    std::printf("%8.1f %12.4f %10s %12.4f %9.1f%%\n", penalty,
                emin.best_cost, argmin_feasible ? "feasible" : "UNFEAS",
                dual_bound,
                opt.best_cost != 0.0
                    ? 100.0 * (opt.best_cost - dual_bound) / -opt.best_cost
                    : 0.0);
  }
  std::printf(
      "\nreading: LB_P < OPT with an UNFEASIBLE argmin marks P < P_C "
      "(paper Fig. 2a); LB_L recovers most of that gap at the same P "
      "(Fig. 2b), which is why SAIM can run with small untuned "
      "penalties.\n");
  return 0;
}
