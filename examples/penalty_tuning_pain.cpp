// Why self-adaptation matters: the penalty-tuning pain the paper's
// Table II quantifies, reproduced on one mid-size QKP instance.
//
// The classical penalty method needs P >= P_C to make the constrained
// optimum the ground state, but P_C is instance-specific. This example
//   1. sweeps fixed penalties P = alpha dN over a ladder of alphas and
//      shows the accuracy/feasibility trade-off of every rung,
//   2. runs the paper's coarse tuning loop (increase until >=20%
//      feasibility) and prints what the tuning phase costs in samples,
//   3. runs SAIM once with the untuned P = 2dN and no tuning at all.
#include <cstdio>

#include "anneal/backend.hpp"
#include "core/penalty_method.hpp"
#include "core/saim_solver.hpp"
#include "heuristics/greedy.hpp"
#include "problems/qkp.hpp"

int main() {
  using namespace saim;

  const auto inst = problems::make_paper_qkp(100, 50, 4);
  const auto mapping = problems::qkp_to_problem(inst);
  const auto eval = core::make_qkp_evaluator(inst);
  std::printf("QKP instance %s: %zu items, capacity %lld, density %.2f\n\n",
              inst.name().c_str(), inst.n(),
              static_cast<long long>(inst.capacity()), inst.density());

  const std::size_t runs = 300;
  const std::size_t mcs = 1000;

  // --- 1. the fixed-P landscape.
  std::printf("fixed-penalty sweep (%zu runs x %zu MCS each):\n", runs, mcs);
  std::printf("%8s %12s %10s %8s\n", "alpha", "best-cost", "feas%", "P");
  double best_cost_seen = static_cast<double>(
      inst.cost(heuristics::greedy_qkp(inst)));
  for (const double alpha : {0.5, 2.0, 10.0, 50.0, 200.0, 500.0}) {
    anneal::PBitBackend backend(pbit::Schedule::linear(10.0), mcs);
    core::PenaltyOptions opts;
    opts.runs = runs;
    opts.penalty_alpha = alpha;
    opts.seed = 11;
    const auto r = core::solve_penalty_method(mapping.problem, backend, opts,
                                              eval);
    if (r.found_feasible) best_cost_seen = std::min(best_cost_seen,
                                                    r.best_cost);
    std::printf("%8.1f %12.0f %9.1f%% %8.0f\n", alpha,
                r.found_feasible ? r.best_cost : 0.0,
                100.0 * r.feasibility_rate(),
                lagrange::heuristic_penalty(mapping.problem, alpha));
  }
  std::printf("note the trade-off: small P -> low feasibility, large P -> "
              "feasible but lower quality.\n\n");

  // --- 2. the paper's coarse tuning loop.
  anneal::PBitBackend tune_backend(pbit::Schedule::linear(10.0), mcs);
  core::PenaltyTuningOptions tune_opts;
  tune_opts.probe_runs = 10;
  tune_opts.seed = 5;
  const auto tuning =
      core::tune_penalty(mapping.problem, tune_backend, tune_opts, eval);
  std::printf("coarse tuning loop (target feasibility >= 20%%):\n");
  for (const auto& [alpha, feas] : tuning.probes) {
    std::printf("  probe alpha=%-6.1f -> feasibility %.1f%%\n", alpha,
                100.0 * feas);
  }
  std::printf("selected alpha = %.0f (P = %.0f) after burning %zu MCS on "
              "tuning alone\n\n",
              tuning.alpha, tuning.penalty, tuning.total_sweeps);

  // --- 3. SAIM: no tuning, untuned P = 2dN.
  anneal::PBitBackend backend(pbit::Schedule::linear(10.0), mcs);
  core::SaimOptions sopts;
  sopts.iterations = runs;
  sopts.eta = 20.0;
  sopts.penalty_alpha = 2.0;
  sopts.seed = 11;
  core::SaimSolver solver(mapping.problem, backend, sopts);
  const auto saim = solver.solve(eval);
  if (saim.found_feasible) {
    best_cost_seen = std::min(best_cost_seen, saim.best_cost);
  }

  std::printf("SAIM with untuned P=2dN: best cost %.0f, feasibility %.1f%%, "
              "zero tuning samples\n",
              saim.found_feasible ? saim.best_cost : 0.0,
              100.0 * saim.feasibility_rate());
  std::printf("best-known cost across everything above: %.0f "
              "(SAIM accuracy %.2f%%)\n",
              best_cost_seen,
              saim.found_feasible
                  ? core::accuracy_percent(saim.best_cost, best_cost_seen)
                  : 0.0);
  return 0;
}
