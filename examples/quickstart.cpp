// Quickstart: solve a small knapsack-with-synergies (QKP) with the
// self-adaptive Ising machine in ~30 lines of library use.
//
//   1. describe the instance (values, pairwise synergies, weights, capacity)
//   2. lower it to the equality-constrained normalized form (slack bits
//      are added automatically)
//   3. pick an inner Ising machine (the paper's p-bit annealer)
//   4. run SAIM; the penalty is the untuned heuristic P = 2dN and the
//      Lagrange multipliers adapt on their own.
#include <cstdio>
#include <vector>

#include "anneal/backend.hpp"
#include "core/penalty_method.hpp"
#include "core/saim_solver.hpp"
#include "problems/qkp.hpp"

int main() {
  using namespace saim;

  // The paper's Fig. 3a cartoon, roughly: a handful of items with
  // individual values, pairwise synergy values, weights, and one knapsack.
  const std::size_t n = 8;
  std::vector<std::int64_t> values = {64, 250, 21, 122, 15, 6, 28, 34};
  std::vector<std::int64_t> pair_values(n * n, 0);
  auto synergy = [&](std::size_t i, std::size_t j, std::int64_t v) {
    pair_values[i * n + j] = v;
    pair_values[j * n + i] = v;
  };
  synergy(0, 1, 12);  // items 0 and 1 are worth extra together
  synergy(1, 3, 30);
  synergy(2, 6, 8);
  synergy(4, 7, 17);
  std::vector<std::int64_t> weights = {26, 11, 8, 2, 9, 4, 13, 7};
  const std::int64_t capacity = 42;

  const problems::QkpInstance instance("quickstart", values, pair_values,
                                       weights, capacity);

  // Lower to min f(x) s.t. a.x + slack = b, normalized for the IM.
  const auto mapping = problems::qkp_to_problem(instance);
  std::printf("instance: %zu items -> %zu spins (%zu slack bits)\n",
              instance.n(), mapping.problem.n(),
              mapping.slack.num_bits());

  // The paper's inner solver: p-bit machine, linear anneal 0 -> beta_max.
  anneal::PBitBackend backend(pbit::Schedule::linear(10.0),
                              /*sweeps=*/1000);

  core::SaimOptions options;
  options.iterations = 200;  // K outer iterations (lambda updates)
  options.eta = 20.0;        // subgradient step
  options.penalty_alpha = 2.0;  // P = 2dN, no tuning needed
  options.seed = 1;

  core::SaimSolver solver(mapping.problem, backend, options);
  const auto result = solver.solve(core::make_qkp_evaluator(instance));

  if (!result.found_feasible) {
    std::printf("no feasible solution found — increase iterations\n");
    return 1;
  }
  std::printf("best packing (profit %lld, weight %lld / %lld):\n",
              static_cast<long long>(-result.best_cost),
              static_cast<long long>(instance.total_weight(result.best_x)),
              static_cast<long long>(capacity));
  for (std::size_t i = 0; i < instance.n(); ++i) {
    if (result.best_x[i]) {
      std::printf("  item %zu  value %lld  weight %lld\n", i,
                  static_cast<long long>(values[i]),
                  static_cast<long long>(weights[i]));
    }
  }
  std::printf("feasible samples: %zu/%zu, total Monte-Carlo sweeps: %zu\n",
              result.feasible_count, result.total_runs, result.total_sweeps);
  return 0;
}
