// Mean-variance portfolio selection under a budget — the paper's
// "portfolio optimization" motivation with a genuinely quadratic,
// real-valued objective (correlated risk), solved by SAIM on the p-bit
// machine and cross-checked against exhaustive enumeration.
//
// Also demonstrates the risk-aversion dial: sweeping kappa trades expected
// return against portfolio variance along the efficient frontier.
#include <cstdio>

#include "anneal/backend.hpp"
#include "core/saim_solver.hpp"
#include "exact/exhaustive.hpp"
#include "problems/portfolio.hpp"

int main() {
  using namespace saim;
  using namespace saim::problems;

  PortfolioGeneratorParams gen;
  gen.n = 18;  // enumerable, so every SAIM answer below is verified exact
  gen.factors = 3;
  gen.seed = 42;
  gen.budget_fraction = 0.35;

  std::printf("%6s | %10s %10s %10s | %8s %9s\n", "kappa", "return",
              "risk", "objective", "assets", "verified");
  for (const double kappa : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    gen.risk_aversion = kappa;
    const auto inst = problems::generate_portfolio(gen);

    const auto mapping = problems::portfolio_to_problem(inst);
    anneal::PBitBackend backend(pbit::Schedule::linear(10.0), 800);
    core::SaimOptions opts;
    opts.iterations = 250;
    opts.eta = 5.0;
    opts.penalty_alpha = 2.0;
    opts.seed = 9;
    core::SaimSolver solver(mapping.problem, backend, opts);
    const auto result =
        solver.solve([&](std::span<const std::uint8_t> x) {
          core::SampleVerdict v;
          const auto decision = x.first(inst.n());
          v.feasible = inst.feasible(decision);
          v.cost = inst.objective(decision);
          return v;
        });

    const auto exact = exact::exhaustive_minimize(
        inst.n(), [&](std::span<const std::uint8_t> x) {
          exact::Verdict v;
          v.feasible = inst.feasible(x);
          v.cost = inst.objective(x);
          return v;
        });

    if (!result.found_feasible) {
      std::printf("%6.1f | no feasible sample found\n", kappa);
      continue;
    }
    std::size_t picked = 0;
    for (const auto b : result.best_x) picked += b;
    const bool verified =
        std::abs(result.best_cost - exact.best_cost) < 1e-9;
    std::printf("%6.1f | %10.4f %10.5f %10.4f | %5zu/%-2zu %9s\n", kappa,
                inst.portfolio_return(result.best_x),
                inst.portfolio_risk(result.best_x), result.best_cost,
                picked, inst.n(), verified ? "exact" : "suboptimal");
  }
  std::printf("\nthe frontier behaves as theory demands: higher kappa -> "
              "lower risk, usually lower return, fewer/cleaner assets.\n");
  return 0;
}
