// Tests for the observability subsystem (ISSUE 7): histogram bucket
// boundaries, quantile interpolation and snapshot merging; registry
// get-or-create semantics and thread-safety (ASan/TSan-friendly: many
// threads hammer the same names); Prometheus text rendering; and a real
// scrape of the MetricsServer endpoint returning every registered
// series.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/connection.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_server.hpp"

namespace saim::obs {
namespace {

// ------------------------------------------------------------- histogram

TEST(Histogram, BucketBoundariesAreLogScale) {
  // Everything at or below the first upper bound (and junk) lands in
  // bucket 0.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-5.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(std::nan("")), 0u);
  EXPECT_EQ(Histogram::bucket_index(Histogram::kMinUpper), 0u);

  // upper(i) = kMinUpper * 2^i, inclusive: an exact power of two is its
  // own bucket's upper bound, one ulp past it rounds up.
  for (std::size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
    const double upper = Histogram::bucket_upper(i);
    EXPECT_EQ(Histogram::bucket_index(upper), i) << "upper(" << i << ")";
    EXPECT_EQ(Histogram::bucket_index(upper * 1.0001), i + 1);
  }
  EXPECT_TRUE(std::isinf(Histogram::bucket_upper(Histogram::kBuckets - 1)));
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<double>::max()),
            Histogram::kBuckets - 1);
}

TEST(Histogram, QuantilesInterpolateInsideTheOwningBucket) {
  Histogram h;
  EXPECT_EQ(h.snapshot().quantile(0.5), 0.0) << "empty histogram";

  // 100 observations of 1.5 ms all land in the (1.024, 2.048] bucket;
  // the quantile estimate interpolates linearly across that bucket.
  for (int i = 0; i < 100; ++i) h.observe(1.5);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.sum, 150.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 1.5);
  const double lower = 1.024, upper = 2.048;
  EXPECT_NEAR(snap.quantile(0.5), lower + (upper - lower) * 0.5, 1e-9);
  EXPECT_NEAR(snap.quantile(1.0), upper, 1e-9);
  EXPECT_GT(snap.quantile(0.95), snap.quantile(0.50));

  // The overflow bucket reports its lower bound, not infinity.
  Histogram over;
  over.observe(1e12);
  EXPECT_DOUBLE_EQ(over.snapshot().quantile(0.99),
                   Histogram::bucket_upper(Histogram::kBuckets - 2));
}

TEST(Histogram, QuantilesAreOrderedOnASpreadDistribution) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(0.1 * i);  // 0.1 .. 100 ms
  const auto snap = h.snapshot();
  const double p50 = snap.quantile(0.50);
  const double p95 = snap.quantile(0.95);
  const double p99 = snap.quantile(0.99);
  EXPECT_LT(p50, p95);
  EXPECT_LT(p95, p99);
  // Log-scale buckets bound the relative error at ~2x of the true value.
  EXPECT_GT(p50, 25.0);
  EXPECT_LT(p50, 100.0);
  EXPECT_GT(p99, 64.0);
}

TEST(HistogramSnapshot, MergeAddsBucketwise) {
  Histogram a, b;
  for (int i = 0; i < 10; ++i) a.observe(0.5);
  for (int i = 0; i < 30; ++i) b.observe(8.0);
  auto merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.count, 40u);
  EXPECT_DOUBLE_EQ(merged.sum, 10 * 0.5 + 30 * 8.0);
  // 75% of the mass sits in b's bucket, so the median lands there.
  EXPECT_GT(merged.quantile(0.5), 4.0);
  // Merging an empty snapshot is the identity.
  auto copy = merged;
  copy.merge(HistogramSnapshot{});
  EXPECT_EQ(copy.count, merged.count);
  EXPECT_DOUBLE_EQ(copy.quantile(0.9), merged.quantile(0.9));
}

// -------------------------------------------------------------- registry

TEST(MetricsRegistry, GetOrCreateReturnsStableHandles) {
  MetricsRegistry registry;
  Counter& c1 = registry.counter("saim_test_total", "help");
  Counter& c2 = registry.counter("saim_test_total");
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  EXPECT_EQ(c2.value(), 3u);

  registry.gauge("saim_test_gauge").set(2.5);
  registry.histogram("saim_test_ms").observe(1.0);
  EXPECT_THROW(registry.gauge("saim_test_total"), std::logic_error)
      << "one name, one kind";
  EXPECT_THROW(registry.counter("bad name"), std::invalid_argument);
  EXPECT_THROW(registry.counter(""), std::invalid_argument);
  EXPECT_THROW(registry.counter("0starts_with_digit"), std::invalid_argument);

  const auto names = registry.names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));

  EXPECT_TRUE(registry.histogram_snapshot("saim_test_ms").has_value());
  EXPECT_FALSE(registry.histogram_snapshot("saim_test_total").has_value())
      << "wrong kind must not get-or-create";
  EXPECT_FALSE(registry.histogram_snapshot("absent").has_value());
}

TEST(MetricsRegistry, ConcurrentRegistrationAndRecordingIsExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kOps = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Every thread re-looks-up the shared names (locked path) AND
      // records through a pre-registered handle (hot path).
      Counter& counter = registry.counter("saim_shared_total");
      Histogram& hist = registry.histogram("saim_shared_ms");
      Gauge& gauge = registry.gauge("saim_shared_gauge");
      for (int i = 0; i < kOps; ++i) {
        counter.add();
        hist.observe(0.5 + t);
        gauge.set(static_cast<double>(i));
        if (i % 1024 == 0) {
          registry.counter("saim_shared_total").add(0);
          (void)registry.names();
          (void)registry.render_prometheus();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter("saim_shared_total").value(),
            static_cast<std::uint64_t>(kThreads) * kOps);
  const auto snap = registry.histogram_snapshot("saim_shared_ms");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->count, static_cast<std::uint64_t>(kThreads) * kOps);
}

// ------------------------------------------------------------- prom text

TEST(PromText, RenderIsWellFormedExposition) {
  MetricsRegistry registry;
  registry.counter("saim_events_total", "events").add(7);
  registry.gauge("saim_depth", "queue depth").set(3.0);
  for (int i = 0; i < 5; ++i) {
    registry.histogram("saim_wait_ms", "wait").observe(2.0);
  }
  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("# HELP saim_events_total events"), std::string::npos);
  EXPECT_NE(text.find("# TYPE saim_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("saim_events_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE saim_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("saim_depth 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE saim_wait_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("saim_wait_ms_bucket{le=\"+Inf\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("saim_wait_ms_sum 10\n"), std::string::npos);
  EXPECT_NE(text.find("saim_wait_ms_count 5\n"), std::string::npos);
  // Buckets are cumulative: the +Inf bucket equals the count.
  EXPECT_EQ(text.find("# TYPE saim_wait_ms histogram"),
            text.rfind("# TYPE saim_wait_ms histogram"))
      << "one TYPE header per metric";
}

TEST(PromText, LabeledHistogramSeriesShareOneHeader) {
  Histogram h0, h1;
  h0.observe(1.0);
  h1.observe(4.0);
  PromText text;
  text.header("saim_rt_ms", "histogram", "round trip");
  text.histogram_series("saim_rt_ms", "shard=\"0\"", h0.snapshot());
  text.histogram_series("saim_rt_ms", "shard=\"1\"", h1.snapshot());
  const std::string& out = text.str();
  EXPECT_EQ(out.find("# TYPE saim_rt_ms"), out.rfind("# TYPE saim_rt_ms"));
  EXPECT_NE(out.find("saim_rt_ms_bucket{shard=\"0\",le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(out.find("saim_rt_ms_count{shard=\"1\"} 1"), std::string::npos);
}

// -------------------------------------------------------- metrics server

/// One-shot HTTP GET against the endpoint; returns the whole response
/// (headers + body) with lines re-joined by '\n'.
std::string http_get(int port) {
  net::Connection conn = net::connect_to("127.0.0.1", port);
  conn.send_line("GET /metrics HTTP/1.0\r");
  conn.send_line("\r");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (conn.outbound_bytes() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    if (!conn.pump_writes()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::string response;
  while (!conn.eof() && std::chrono::steady_clock::now() < deadline) {
    for (const auto& line : conn.read_lines()) {
      response += line;
      response += "\n";
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (const auto& line : conn.read_lines()) {
    response += line;
    response += "\n";
  }
  return response;
}

TEST(MetricsServer, ScrapeReturnsEveryRegisteredSeries) {
  MetricsRegistry registry;
  registry.counter("saim_jobs_total", "jobs").add(42);
  registry.gauge("saim_inflight", "inflight").set(1.0);
  registry.histogram("saim_latency_ms", "latency").observe(3.5);

  MetricsServer server("127.0.0.1", 0,
                       [&registry] { return registry.render_prometheus(); });
  ASSERT_GT(server.port(), 0);

  const std::string response = http_get(server.port());
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  for (const auto& name : registry.names()) {
    EXPECT_NE(response.find(name), std::string::npos)
        << "scrape must return series '" << name << "'";
  }
  EXPECT_NE(response.find("saim_jobs_total 42"), std::string::npos);

  // The endpoint is one-shot per connection but serves any number of
  // connections; a second scrape sees updated values.
  registry.counter("saim_jobs_total").add(1);
  EXPECT_NE(http_get(server.port()).find("saim_jobs_total 43"),
            std::string::npos);
  server.stop();
}

TEST(MetricsServer, ProducerFailureIsA500NotACrash) {
  MetricsServer server("127.0.0.1", 0, []() -> std::string {
    throw std::runtime_error("boom");
  });
  const std::string response = http_get(server.port());
  EXPECT_NE(response.find("500"), std::string::npos) << response;
  EXPECT_NE(response.find("metrics producer failed"), std::string::npos);
}

}  // namespace
}  // namespace saim::obs
