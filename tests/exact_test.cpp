#include <gtest/gtest.h>

#include "exact/exhaustive.hpp"
#include "exact/knapsack_dp.hpp"
#include "exact/mkp_branch_bound.hpp"
#include "problems/mkp.hpp"
#include "util/rng.hpp"

namespace saim::exact {
namespace {

TEST(KnapsackDp, TextbookInstance) {
  const std::vector<std::int64_t> values = {60, 100, 120};
  const std::vector<std::int64_t> weights = {10, 20, 30};
  const auto r = solve_knapsack_dp(values, weights, 50);
  EXPECT_EQ(r.best_profit, 220);
  EXPECT_EQ(r.selection, (std::vector<std::uint8_t>{0, 1, 1}));
}

TEST(KnapsackDp, ZeroCapacitySelectsNothing) {
  const std::vector<std::int64_t> values = {5};
  const std::vector<std::int64_t> weights = {1};
  const auto r = solve_knapsack_dp(values, weights, 0);
  EXPECT_EQ(r.best_profit, 0);
  EXPECT_EQ(r.selection[0], 0);
}

TEST(KnapsackDp, OversizedItemsSkipped) {
  const std::vector<std::int64_t> values = {100, 1};
  const std::vector<std::int64_t> weights = {50, 1};
  const auto r = solve_knapsack_dp(values, weights, 10);
  EXPECT_EQ(r.best_profit, 1);
}

TEST(KnapsackDp, InvalidInputsThrow) {
  const std::vector<std::int64_t> v = {1};
  const std::vector<std::int64_t> w2 = {1, 2};
  EXPECT_THROW(solve_knapsack_dp(v, w2, 5), std::invalid_argument);
  const std::vector<std::int64_t> w = {1};
  EXPECT_THROW(solve_knapsack_dp(v, w, -1), std::invalid_argument);
  const std::vector<std::int64_t> wneg = {-1};
  EXPECT_THROW(solve_knapsack_dp(v, wneg, 5), std::invalid_argument);
}

TEST(KnapsackDp, SelectionIsConsistentWithProfit) {
  util::Xoshiro256pp rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 12;
    std::vector<std::int64_t> values(n);
    std::vector<std::int64_t> weights(n);
    for (auto& v : values) v = rng.range(1, 50);
    for (auto& w : weights) w = rng.range(1, 20);
    const std::int64_t cap = rng.range(10, 80);
    const auto r = solve_knapsack_dp(values, weights, cap);
    std::int64_t profit = 0;
    std::int64_t weight = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (r.selection[i]) {
        profit += values[i];
        weight += weights[i];
      }
    }
    EXPECT_EQ(profit, r.best_profit);
    EXPECT_LE(weight, cap);
  }
}

TEST(Exhaustive, FindsKnownMinimum) {
  // min over 2 bits of cost = -(x0 + 2 x1) with all states feasible.
  const auto r = exhaustive_minimize(2, [](std::span<const std::uint8_t> x) {
    Verdict v;
    v.feasible = true;
    v.cost = -(static_cast<double>(x[0]) + 2.0 * x[1]);
    return v;
  });
  ASSERT_TRUE(r.found);
  EXPECT_DOUBLE_EQ(r.best_cost, -3.0);
  EXPECT_EQ(r.best_x, (std::vector<std::uint8_t>{1, 1}));
  EXPECT_EQ(r.feasible_count, 4u);
}

TEST(Exhaustive, InfeasibleEverywhere) {
  const auto r = exhaustive_minimize(3, [](std::span<const std::uint8_t>) {
    return Verdict{false, 0.0};
  });
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.feasible_count, 0u);
}

TEST(Exhaustive, TooManyVariablesThrows) {
  EXPECT_THROW(
      exhaustive_minimize(31,
                          [](std::span<const std::uint8_t>) {
                            return Verdict{true, 0.0};
                          }),
      std::invalid_argument);
}

// Property: DP equals exhaustive enumeration on random single knapsacks.
class DpVsExhaustive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DpVsExhaustive, AgreeOnRandomInstances) {
  util::Xoshiro256pp rng(GetParam());
  const std::size_t n = 10;
  std::vector<std::int64_t> values(n);
  std::vector<std::int64_t> weights(n);
  for (auto& v : values) v = rng.range(1, 40);
  for (auto& w : weights) w = rng.range(1, 15);
  const std::int64_t cap = rng.range(5, 60);

  const auto dp = solve_knapsack_dp(values, weights, cap);
  const auto ex =
      exhaustive_minimize(n, [&](std::span<const std::uint8_t> x) {
        Verdict v;
        std::int64_t weight = 0;
        std::int64_t profit = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if (x[i]) {
            weight += weights[i];
            profit += values[i];
          }
        }
        v.feasible = weight <= cap;
        v.cost = -static_cast<double>(profit);
        return v;
      });
  ASSERT_TRUE(ex.found);
  EXPECT_DOUBLE_EQ(-ex.best_cost, static_cast<double>(dp.best_profit));
}

INSTANTIATE_TEST_SUITE_P(RandomKnapsacks, DpVsExhaustive,
                         ::testing::Range<std::uint64_t>(0, 15));

TEST(MkpBnb, MatchesDpOnSingleConstraint) {
  util::Xoshiro256pp rng(5);
  const std::size_t n = 18;
  std::vector<std::int64_t> values(n);
  std::vector<std::int64_t> weights(n);
  for (auto& v : values) v = rng.range(1, 100);
  for (auto& w : weights) w = rng.range(1, 30);
  const std::int64_t cap = 120;

  problems::MkpInstance inst("m1", values, weights, {cap});
  const auto bnb = solve_mkp_bnb(inst);
  const auto dp = solve_knapsack_dp(values, weights, cap);
  EXPECT_TRUE(bnb.proven_optimal);
  EXPECT_EQ(bnb.best_profit, dp.best_profit);
}

// Property: B&B equals exhaustive enumeration on random small MKPs.
class BnbVsExhaustive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BnbVsExhaustive, AgreeOnRandomInstances) {
  problems::MkpGeneratorParams p;
  p.n = 14;
  p.m = 3;
  p.seed = GetParam();
  p.max_weight = 30;
  const auto inst = problems::generate_mkp(p);

  const auto bnb = solve_mkp_bnb(inst);
  ASSERT_TRUE(bnb.proven_optimal);

  const auto ex = exhaustive_minimize(
      inst.n(), [&](std::span<const std::uint8_t> x) {
        Verdict v;
        v.feasible = inst.feasible(x);
        v.cost = static_cast<double>(inst.cost(x));
        return v;
      });
  ASSERT_TRUE(ex.found);
  EXPECT_DOUBLE_EQ(static_cast<double>(bnb.best_profit), -ex.best_cost);
  // The reported selection must be feasible and match the profit.
  EXPECT_TRUE(inst.feasible(bnb.best_x));
  EXPECT_EQ(inst.profit(bnb.best_x), bnb.best_profit);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, BnbVsExhaustive,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(MkpBnb, NodeBudgetTripsGracefully) {
  problems::MkpGeneratorParams p;
  p.n = 60;
  p.m = 5;
  p.seed = 3;
  const auto inst = problems::generate_mkp(p);
  BnbOptions opts;
  opts.max_nodes = 1000;  // far too small to finish
  const auto r = solve_mkp_bnb(inst, opts);
  EXPECT_FALSE(r.proven_optimal);
  // Must still return a feasible incumbent (the greedy warm start at worst).
  EXPECT_TRUE(inst.feasible(r.best_x));
  EXPECT_GT(r.best_profit, 0);
}

TEST(MkpBnb, SolvesModerateInstanceExactly) {
  problems::MkpGeneratorParams p;
  p.n = 30;
  p.m = 5;
  p.seed = 11;
  const auto inst = problems::generate_mkp(p);
  const auto r = solve_mkp_bnb(inst);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_TRUE(inst.feasible(r.best_x));
  EXPECT_EQ(inst.profit(r.best_x), r.best_profit);
  EXPECT_GT(r.nodes, 0u);
}

}  // namespace
}  // namespace saim::exact
