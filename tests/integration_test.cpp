// End-to-end integration tests: the full pipeline instance -> slack
// mapping -> Lagrangian -> backend -> SAIM, cross-checked against exact
// solvers, and the paper's central qualitative claims on downscaled
// instances:
//   (1) SAIM reaches the optimum with the small untuned penalty 2dN,
//   (2) at an equal MCS budget SAIM beats the fixed-small-P penalty method,
//   (3) the algorithm is backend-agnostic (p-bit / Metropolis SA / PT),
//   (4) the MKP path handles multiple constraints.
#include <gtest/gtest.h>

#include "anneal/parallel_tempering.hpp"
#include "anneal/simulated_annealing.hpp"
#include "core/penalty_method.hpp"
#include "core/saim_solver.hpp"
#include "exact/exhaustive.hpp"
#include "exact/mkp_branch_bound.hpp"
#include "problems/mkp.hpp"
#include "problems/qkp.hpp"

namespace saim {
namespace {

double qkp_exhaustive_opt(const problems::QkpInstance& inst) {
  const auto r = exact::exhaustive_minimize(
      inst.n(), [&](std::span<const std::uint8_t> x) {
        exact::Verdict v;
        v.feasible = inst.feasible(x);
        v.cost = static_cast<double>(inst.cost(x));
        return v;
      });
  EXPECT_TRUE(r.found);
  return r.best_cost;
}

TEST(Integration, SaimReachesQkpOptimumWithUntunedPenalty) {
  const auto inst = problems::make_paper_qkp(14, 50, 10);
  const auto mapping = problems::qkp_to_problem(inst);
  const double opt = qkp_exhaustive_opt(inst);

  anneal::PBitBackend backend(pbit::Schedule::linear(10.0), 400);
  core::SaimOptions opts;
  opts.iterations = 200;
  opts.eta = 20.0;
  opts.penalty_alpha = 2.0;  // the paper's untuned 2dN
  opts.seed = 5;
  core::SaimSolver solver(mapping.problem, backend, opts);
  const auto result = solver.solve(core::make_qkp_evaluator(inst));
  ASSERT_TRUE(result.found_feasible);
  EXPECT_DOUBLE_EQ(result.best_cost, opt);
}

TEST(Integration, SaimBeatsPenaltyMethodAtEqualBudget) {
  // Accumulate over several instances: on average SAIM's best accuracy at
  // the same total MCS must dominate the fixed-small-P penalty method
  // (paper Table II, where the gap is ~15 accuracy points).
  double saim_total = 0.0;
  double penalty_total = 0.0;
  for (int index = 1; index <= 3; ++index) {
    const auto inst = problems::make_paper_qkp(14, 50, index);
    const auto mapping = problems::qkp_to_problem(inst);
    const double opt = qkp_exhaustive_opt(inst);
    const auto eval = core::make_qkp_evaluator(inst);

    anneal::PBitBackend backend1(pbit::Schedule::linear(10.0), 200);
    core::SaimOptions sopts;
    sopts.iterations = 120;
    sopts.eta = 20.0;
    sopts.penalty_alpha = 2.0;
    sopts.seed = 31;
    core::SaimSolver saim(mapping.problem, backend1, sopts);
    const auto saim_result = saim.solve(eval);

    anneal::PBitBackend backend2(pbit::Schedule::linear(10.0), 200);
    core::PenaltyOptions popts;
    popts.runs = 120;  // identical run count and MCS per run
    popts.penalty_alpha = 2.0;
    popts.seed = 31;
    const auto penalty_result =
        core::solve_penalty_method(mapping.problem, backend2, popts, eval);

    saim_total += saim_result.found_feasible
                      ? core::accuracy_percent(saim_result.best_cost, opt)
                      : 0.0;
    penalty_total +=
        penalty_result.found_feasible
            ? core::accuracy_percent(penalty_result.best_cost, opt)
            : 0.0;
  }
  EXPECT_GT(saim_total, penalty_total);
  EXPECT_GT(saim_total / 3.0, 95.0);  // SAIM should be near-optimal
}

TEST(Integration, BackendAgnosticMetropolisSa) {
  const auto inst = problems::make_paper_qkp(12, 50, 9);
  const auto mapping = problems::qkp_to_problem(inst);
  const double opt = qkp_exhaustive_opt(inst);

  anneal::MetropolisSaBackend backend(pbit::Schedule::linear(10.0), 300);
  core::SaimOptions opts;
  opts.iterations = 150;
  opts.eta = 20.0;
  opts.seed = 8;
  core::SaimSolver solver(mapping.problem, backend, opts);
  const auto result = solver.solve(core::make_qkp_evaluator(inst));
  ASSERT_TRUE(result.found_feasible);
  EXPECT_GE(core::accuracy_percent(result.best_cost, opt), 99.0);
}

TEST(Integration, BackendAgnosticParallelTempering) {
  const auto inst = problems::make_paper_qkp(12, 50, 2);
  const auto mapping = problems::qkp_to_problem(inst);
  const double opt = qkp_exhaustive_opt(inst);

  anneal::PtOptions pt;
  pt.replicas = 6;
  pt.beta_min = 0.5;
  pt.beta_max = 20.0;
  pt.sweeps = 100;
  anneal::ParallelTemperingBackend backend(pt);
  core::SaimOptions opts;
  opts.iterations = 80;
  opts.eta = 20.0;
  opts.seed = 4;
  core::SaimSolver solver(mapping.problem, backend, opts);
  const auto result = solver.solve(core::make_qkp_evaluator(inst));
  ASSERT_TRUE(result.found_feasible);
  EXPECT_GE(core::accuracy_percent(result.best_cost, opt), 99.0);
}

TEST(Integration, MkpMultiConstraintReachesBnbOptimum) {
  problems::MkpGeneratorParams p;
  p.n = 16;
  p.m = 3;
  p.seed = 21;
  const auto inst = problems::generate_mkp(p);
  const auto exact = exact::solve_mkp_bnb(inst);
  ASSERT_TRUE(exact.proven_optimal);

  const auto mapping = problems::mkp_to_problem(inst);
  anneal::PBitBackend backend(pbit::Schedule::linear(50.0), 400);
  core::SaimOptions opts;
  opts.iterations = 300;
  opts.eta = 0.05;  // the paper's MKP eta
  opts.penalty_alpha = 5.0;
  opts.seed = 12;
  core::SaimSolver solver(mapping.problem, backend, opts);
  const auto result = solver.solve(core::make_mkp_evaluator(inst));
  ASSERT_TRUE(result.found_feasible);
  const double accuracy = core::accuracy_percent(
      result.best_cost, -static_cast<double>(exact.best_profit));
  EXPECT_GE(accuracy, 98.0);
}

TEST(Integration, LambdaStabilizesOnMkp) {
  // Fig. 5b behaviour: multipliers grow from 0 and then level off.
  problems::MkpGeneratorParams p;
  p.n = 14;
  p.m = 2;
  p.seed = 33;
  const auto inst = problems::generate_mkp(p);
  const auto mapping = problems::mkp_to_problem(inst);

  anneal::PBitBackend backend(pbit::Schedule::linear(50.0), 200);
  core::SaimOptions opts;
  opts.iterations = 200;
  opts.eta = 0.05;
  opts.penalty_alpha = 5.0;
  opts.seed = 3;
  opts.record_history = true;
  core::SaimSolver solver(mapping.problem, backend, opts);
  const auto result = solver.solve(core::make_mkp_evaluator(inst));
  ASSERT_EQ(result.history.size(), 200u);

  // Compare the average |lambda change| over the first and last quarters:
  // the dynamics must have slowed down markedly.
  auto avg_step = [&](std::size_t from, std::size_t to) {
    double acc = 0.0;
    std::size_t count = 0;
    for (std::size_t k = from + 1; k < to; ++k) {
      for (std::size_t m = 0; m < result.history[k].lambda.size(); ++m) {
        acc += std::abs(result.history[k].lambda[m] -
                        result.history[k - 1].lambda[m]);
      }
      ++count;
    }
    return count ? acc / static_cast<double>(count) : 0.0;
  };
  const double early = avg_step(0, 50);
  const double late = avg_step(150, 200);
  EXPECT_LT(late, early);
}

TEST(Integration, FeasiblePoolStatsAreConsistent) {
  const auto inst = problems::make_paper_qkp(12, 25, 2);
  const auto mapping = problems::qkp_to_problem(inst);
  anneal::PBitBackend backend(pbit::Schedule::linear(10.0), 200);
  core::SaimOptions opts;
  opts.iterations = 100;
  opts.eta = 20.0;
  opts.seed = 2;
  core::SaimSolver solver(mapping.problem, backend, opts);
  const auto result = solver.solve(core::make_qkp_evaluator(inst));

  EXPECT_EQ(result.feasible_count, result.feasible_cost_stats.count());
  if (result.found_feasible) {
    EXPECT_DOUBLE_EQ(result.best_cost, result.feasible_cost_stats.min());
    // The reported best_x must actually be feasible with that cost.
    EXPECT_TRUE(inst.feasible(result.best_x));
    EXPECT_EQ(static_cast<double>(inst.cost(result.best_x)),
              result.best_cost);
  }
}

}  // namespace
}  // namespace saim
