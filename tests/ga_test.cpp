#include "ga/chu_beasley.hpp"

#include <gtest/gtest.h>

#include "exact/mkp_branch_bound.hpp"
#include "heuristics/greedy.hpp"

namespace saim::ga {
namespace {

problems::MkpInstance test_instance(std::uint64_t seed, std::size_t n = 30,
                                    std::size_t m = 5) {
  problems::MkpGeneratorParams p;
  p.n = n;
  p.m = m;
  p.seed = seed;
  return problems::generate_mkp(p);
}

TEST(ChuBeasleyGa, BestIsFeasibleAndConsistent) {
  const auto inst = test_instance(1);
  GaOptions opts;
  opts.children = 2000;
  opts.seed = 3;
  const auto r = solve_mkp_ga(inst, opts);
  EXPECT_TRUE(inst.feasible(r.best_x));
  EXPECT_EQ(inst.profit(r.best_x), r.best_profit);
  EXPECT_GT(r.children_generated, 0u);
}

TEST(ChuBeasleyGa, AtLeastMatchesGreedy) {
  const auto inst = test_instance(2);
  const auto greedy = heuristics::greedy_mkp(inst);
  GaOptions opts;
  opts.children = 3000;
  const auto r = solve_mkp_ga(inst, opts);
  EXPECT_GE(r.best_profit, inst.profit(greedy));
}

TEST(ChuBeasleyGa, DeterministicPerSeed) {
  const auto inst = test_instance(3);
  GaOptions opts;
  opts.children = 1500;
  opts.seed = 42;
  const auto a = solve_mkp_ga(inst, opts);
  const auto b = solve_mkp_ga(inst, opts);
  EXPECT_EQ(a.best_profit, b.best_profit);
  EXPECT_EQ(a.best_x, b.best_x);
}

TEST(ChuBeasleyGa, ReachesOptimumOnSmallInstance) {
  const auto inst = test_instance(4, 20, 3);
  const auto exact = exact::solve_mkp_bnb(inst);
  ASSERT_TRUE(exact.proven_optimal);
  GaOptions opts;
  opts.children = 8000;
  opts.seed = 7;
  const auto r = solve_mkp_ga(inst, opts);
  EXPECT_EQ(r.best_profit, exact.best_profit);
}

TEST(ChuBeasleyGa, HistoryStrideRecordsIncumbents) {
  const auto inst = test_instance(5);
  GaOptions opts;
  opts.children = 1000;
  opts.history_stride = 100;
  const auto r = solve_mkp_ga(inst, opts);
  EXPECT_FALSE(r.history.empty());
  // Incumbent trace must be monotone non-decreasing.
  for (std::size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_GE(r.history[i], r.history[i - 1]);
  }
  EXPECT_EQ(r.history.back(), r.best_profit);
}

TEST(ChuBeasleyGa, TinyPopulationThrows) {
  const auto inst = test_instance(6);
  GaOptions opts;
  opts.population = 1;
  EXPECT_THROW(solve_mkp_ga(inst, opts), std::invalid_argument);
}

TEST(ChuBeasleyGa, LargerBudgetNeverHurts) {
  const auto inst = test_instance(7, 40, 5);
  GaOptions small;
  small.children = 500;
  small.seed = 9;
  GaOptions large;
  large.children = 5000;
  large.seed = 9;
  const auto rs = solve_mkp_ga(inst, small);
  const auto rl = solve_mkp_ga(inst, large);
  EXPECT_GE(rl.best_profit, rs.best_profit);
}

// Property sweep: across random instances the GA incumbent is always
// feasible and sits between greedy and the exact optimum.
class GaBounds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GaBounds, BetweenGreedyAndOptimal) {
  const auto inst = test_instance(GetParam(), 22, 4);
  const auto exact = exact::solve_mkp_bnb(inst);
  ASSERT_TRUE(exact.proven_optimal);
  const auto greedy_profit =
      inst.profit(heuristics::greedy_mkp(inst));

  GaOptions opts;
  opts.children = 3000;
  opts.seed = GetParam() * 13 + 1;
  const auto r = solve_mkp_ga(inst, opts);
  EXPECT_TRUE(inst.feasible(r.best_x));
  EXPECT_GE(r.best_profit, greedy_profit);
  EXPECT_LE(r.best_profit, exact.best_profit);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, GaBounds,
                         ::testing::Range<std::uint64_t>(10, 18));

}  // namespace
}  // namespace saim::ga
