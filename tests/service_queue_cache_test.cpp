#include <gtest/gtest.h>

#include <algorithm>
#include <initializer_list>
#include <memory>
#include <thread>
#include <vector>

#include "core/result.hpp"
#include "service/job_queue.hpp"
#include "service/result_cache.hpp"
#include "util/parallel.hpp"

namespace saim::service {
namespace {

// ----------------------------------------------------------------- queue

TEST(JobQueue, FifoWithinOnePriority) {
  JobQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(JobQueue, HigherPriorityPopsFirst) {
  JobQueue<int> q;
  q.push(1, Priority::kLow);
  q.push(2, Priority::kNormal);
  q.push(3, Priority::kHigh);
  q.push(4, Priority::kNormal);
  q.push(5, Priority::kHigh);
  // Strict bands, FIFO inside each: high (3,5), normal (2,4), low (1).
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), 5);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 4);
  EXPECT_EQ(q.pop(), 1);
}

TEST(JobQueue, TryPopOnEmptyReturnsNothing) {
  JobQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
  q.push(9);
  EXPECT_EQ(q.try_pop(), 9);
}

TEST(JobQueue, CloseWakesBlockedConsumer) {
  JobQueue<int> q;
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(JobQueue, PushAfterCloseIsRejected) {
  JobQueue<int> q;
  q.close();
  EXPECT_FALSE(q.push(1));
  EXPECT_TRUE(q.closed());
}

TEST(JobQueue, DrainMatchingTakesOnlyMatchesUpToMax) {
  JobQueue<int> q;
  q.push(1, Priority::kLow);
  q.push(2, Priority::kNormal);
  q.push(4, Priority::kNormal);
  q.push(6, Priority::kNormal);
  q.push(3, Priority::kHigh);
  q.push(8, Priority::kHigh);

  // Even numbers only, capped at 3: high band first (8), then the normal
  // band in FIFO order (2, 4); 6 stays because the cap was hit.
  const auto drained =
      q.drain_matching(3, [](const int& v) { return v % 2 == 0; });
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0], 8);
  EXPECT_EQ(drained[1], 2);
  EXPECT_EQ(drained[2], 4);

  // Non-matching items keep their order; the capped-out 6 is still there.
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), 6);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.size(), 0u);
}

TEST(JobQueue, DrainMatchingOnEmptyOrNoMatchReturnsNothing) {
  JobQueue<int> q;
  EXPECT_TRUE(q.drain_matching(4, [](const int&) { return true; }).empty());
  q.push(1);
  EXPECT_TRUE(q.drain_matching(4, [](const int&) { return false; }).empty());
  EXPECT_EQ(q.size(), 1u);
}

TEST(JobQueue, DrainRemovesEverythingInPriorityOrder) {
  JobQueue<int> q;
  q.push(1, Priority::kLow);
  q.push(2, Priority::kHigh);
  q.push(3, Priority::kNormal);
  q.push(4, Priority::kHigh);
  const auto drained = q.drain();
  ASSERT_EQ(drained.size(), 4u);
  EXPECT_EQ(drained[0], 2);
  EXPECT_EQ(drained[1], 4);
  EXPECT_EQ(drained[2], 3);
  EXPECT_EQ(drained[3], 1);
  EXPECT_EQ(q.size(), 0u);
}

TEST(JobQueue, ConcurrentProducersLoseNothing) {
  JobQueue<int> q;
  constexpr int kPerProducer = 200;
  util::parallel_for(
      4,
      [&](std::size_t p) {
        for (int i = 0; i < kPerProducer; ++i) {
          q.push(static_cast<int>(p) * kPerProducer + i);
        }
      },
      4);
  EXPECT_EQ(q.size(), 4u * kPerProducer);
  std::vector<bool> seen(4 * kPerProducer, false);
  while (auto v = q.try_pop()) seen[static_cast<std::size_t>(*v)] = true;
  for (const bool s : seen) EXPECT_TRUE(s);
}

// ----------------------------------------------------------------- cache

std::shared_ptr<const core::SolveResult> result_with_cost(
    double cost, std::size_t total_sweeps = 0) {
  auto r = std::make_shared<core::SolveResult>();
  r->found_feasible = true;
  r->best_cost = cost;
  r->total_sweeps = total_sweeps;
  return r;
}

TEST(ResultCache, MissThenHitReturnsSameObject) {
  ResultCache cache(4);
  EXPECT_EQ(cache.get(1), nullptr);
  const auto value = result_with_cost(-5.0);
  cache.put(1, value);
  const auto hit = cache.get(1);
  EXPECT_EQ(hit.get(), value.get());  // identity, not equality
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.put(1, result_with_cost(-1));
  cache.put(2, result_with_cost(-2));
  ASSERT_NE(cache.get(1), nullptr);  // bump 1: now 2 is LRU
  cache.put(3, result_with_cost(-3));
  EXPECT_EQ(cache.get(2), nullptr);  // evicted
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCache, OverwriteKeepsSingleEntry) {
  ResultCache cache(2);
  cache.put(1, result_with_cost(-1));
  cache.put(1, result_with_cost(-9));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(cache.get(1)->best_cost, -9);
}

TEST(ResultCache, ZeroCapacityDisables) {
  ResultCache cache(0);
  cache.put(1, result_with_cost(-1));
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCache, EvictionIsWeightedByRecomputeCost) {
  // An EXPENSIVE old entry and a CHEAP newer one in the tail half:
  // inserting into a full cache must sacrifice the cheap entry even
  // though the expensive one is least-recently used — plain LRU would
  // throw away the 2-second solve to keep the 2-ms one.
  ResultCache cache(4);
  cache.put(1, result_with_cost(-1, /*total_sweeps=*/1000000));
  cache.put(2, result_with_cost(-2, /*total_sweeps=*/10));
  cache.put(3, result_with_cost(-3, /*total_sweeps=*/800));
  cache.put(4, result_with_cost(-4, /*total_sweeps=*/900));
  cache.put(5, result_with_cost(-5, /*total_sweeps=*/700));
  EXPECT_EQ(cache.get(2), nullptr);  // cheap one evicted
  EXPECT_NE(cache.get(1), nullptr);  // expensive LRU survivor
  EXPECT_NE(cache.get(3), nullptr);
  EXPECT_NE(cache.get(4), nullptr);
  EXPECT_NE(cache.get(5), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCache, EvictionNeverReachesTheHotHalf) {
  // The scan window is capped at half the list: a cheap entry that was
  // just hit (most-recently used) keeps plain-LRU protection no matter
  // how expensive the cold tail is.
  ResultCache cache(2);  // window = 1: degenerates to plain LRU
  cache.put(1, result_with_cost(-1, /*total_sweeps=*/1000000));
  cache.put(2, result_with_cost(-2, /*total_sweeps=*/10));
  ASSERT_NE(cache.get(2), nullptr);  // cheap entry is MRU
  cache.put(3, result_with_cost(-3, /*total_sweeps=*/500));
  EXPECT_NE(cache.get(2), nullptr);  // survived: recency protected it
  EXPECT_EQ(cache.get(1), nullptr);  // the LRU went, expensive or not
}

TEST(ResultCache, EvictionWindowIsBounded) {
  // Entries beyond the scan window keep strict LRU protection: with a
  // window of kEvictionWindow, a cheap entry in front position is safe.
  ResultCache cache(ResultCache::kEvictionWindow + 4);
  cache.put(1, result_with_cost(-1, /*total_sweeps=*/1));  // cheapest...
  for (std::uint64_t k = 2; k <= ResultCache::kEvictionWindow + 4; ++k) {
    cache.put(k, result_with_cost(-double(k), /*total_sweeps=*/1000));
  }
  cache.get(1);  // ...but bumped to most-recent: outside the tail window
  cache.put(99, result_with_cost(-99, /*total_sweeps=*/1000));
  EXPECT_NE(cache.get(1), nullptr);  // survived despite being cheapest
  EXPECT_EQ(cache.stats().evictions, 1u);
}

// ISSUE 4 satellite: eviction edge cases around tiny caches — the scan
// window must clamp to the actual list size (no empty-window scan, no
// size/2 underflow when the list holds one entry) and capacity 0 must be
// inert for every operation.

TEST(ResultCache, CapacityOneEvictsOnEveryInsertWithoutUnderflow) {
  ResultCache cache(1);  // size/2 == 0: window must clamp to 1
  for (std::uint64_t k = 1; k <= 50; ++k) {
    cache.put(k, result_with_cost(-double(k), /*total_sweeps=*/k));
    ASSERT_EQ(cache.size(), 1u);
    ASSERT_NE(cache.get(k), nullptr);  // the newest entry always survives
  }
  EXPECT_EQ(cache.stats().evictions, 49u);
  EXPECT_EQ(cache.get(1), nullptr);
}

TEST(ResultCache, EvictionWithFewerEntriesThanTheTailWindow) {
  // capacity < kEvictionWindow: the scan window is half the LIST, never
  // the full kEvictionWindow — churning through many keys must stay
  // in-bounds and keep exactly `capacity` entries.
  static_assert(3 < ResultCache::kEvictionWindow);
  ResultCache cache(3);
  for (std::uint64_t k = 1; k <= 30; ++k) {
    cache.put(k, result_with_cost(-double(k), /*total_sweeps=*/1000 - k));
    ASSERT_LE(cache.size(), 3u);
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 27u);
  EXPECT_NE(cache.get(30), nullptr);  // most recent insert always present
}

TEST(ResultCache, ZeroCapacityStillCountsLookupsAndNeverEvicts) {
  ResultCache cache(0);
  cache.put(1, result_with_cost(-1));
  cache.put(1, result_with_cost(-1));
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);  // lookups still measured
  EXPECT_EQ(cache.stats().insertions, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.0);
}

TEST(ResultCache, OverwriteAtFullCapacityDoesNotEvict) {
  ResultCache cache(2);
  cache.put(1, result_with_cost(-1));
  cache.put(2, result_with_cost(-2));
  cache.put(1, result_with_cost(-9));  // overwrite, cache already full
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_DOUBLE_EQ(cache.get(1)->best_cost, -9);
  EXPECT_DOUBLE_EQ(cache.get(2)->best_cost, -2);
}

TEST(ResultCache, NullValueIsNeverInserted) {
  ResultCache cache(2);
  cache.put(1, nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

// ------------------------------------------------------- warm-start pool

ising::Bits config_of(std::initializer_list<int> bits) {
  ising::Bits b;
  for (const int v : bits) b.push_back(static_cast<std::uint8_t>(v));
  return b;
}

TEST(ResultCache, WarmPoolReturnsBestCostFirstAndDedupes) {
  ResultCache cache(4, /*warm_capacity=*/4);
  cache.put_warm(7, config_of({1, 0, 0}), -5.0);
  cache.put_warm(7, config_of({0, 1, 0}), -9.0);
  cache.put_warm(7, config_of({1, 0, 0}), -5.0);  // duplicate config
  const auto samples = cache.warm_samples(7);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0], config_of({0, 1, 0}));  // best cost first
  EXPECT_EQ(samples[1], config_of({1, 0, 0}));
  EXPECT_EQ(cache.stats().warm_inserts, 2u);
  EXPECT_EQ(cache.stats().warm_hits, 1u);
}

TEST(ResultCache, WarmPoolKeepsOnlyTheBestSamplesPerProblem) {
  ResultCache cache(4, /*warm_capacity=*/4);
  const auto cap = ResultCache::kWarmSamplesPerProblem;
  for (std::size_t i = 0; i < cap + 3; ++i) {
    cache.put_warm(7, config_of({int(i % 2), int(i / 2 % 2), int(i / 4)}),
                   -double(i));
  }
  const auto samples = cache.warm_samples(7);
  EXPECT_EQ(samples.size(), std::min<std::size_t>(cap, 7));
  // A sample worse than everything pooled is rejected outright.
  const auto before = cache.stats().warm_inserts;
  cache.put_warm(7, config_of({1, 1, 1}), 1000.0);
  EXPECT_EQ(cache.stats().warm_inserts, before);
}

TEST(ResultCache, WarmPoolEvictsLeastRecentlyUsedProblem) {
  ResultCache cache(4, /*warm_capacity=*/2);
  cache.put_warm(1, config_of({1}), -1.0);
  cache.put_warm(2, config_of({1}), -1.0);
  EXPECT_FALSE(cache.warm_samples(1).empty());  // bump problem 1
  cache.put_warm(3, config_of({1}), -1.0);      // evicts problem 2
  EXPECT_TRUE(cache.warm_samples(2).empty());
  EXPECT_FALSE(cache.warm_samples(1).empty());
  EXPECT_FALSE(cache.warm_samples(3).empty());
  EXPECT_EQ(cache.warm_pool_size(), 2u);
}

TEST(ResultCache, WarmPoolDisabledWhenCapacityZero) {
  ResultCache cache(4);  // warm_capacity defaults to 0
  cache.put_warm(7, config_of({1, 0}), -1.0);
  EXPECT_TRUE(cache.warm_samples(7).empty());
  EXPECT_EQ(cache.warm_pool_size(), 0u);
  EXPECT_EQ(cache.stats().warm_inserts, 0u);
  // A disabled pool measures nothing: reads are not "misses", they are
  // non-events (the service would otherwise skew warm hit-rates).
  EXPECT_EQ(cache.stats().warm_misses, 0u);
  EXPECT_EQ(cache.stats().warm_hits, 0u);
}

TEST(ResultCache, WarmPoolCapacityOneAndEmptyConfigEdgeCases) {
  ResultCache cache(4, /*warm_capacity=*/1);
  cache.put_warm(1, ising::Bits{}, -1.0);  // empty config: dropped
  EXPECT_EQ(cache.warm_pool_size(), 0u);
  cache.put_warm(1, config_of({1}), -1.0);
  cache.put_warm(2, config_of({0}), -2.0);  // evicts problem 1's pool
  EXPECT_EQ(cache.warm_pool_size(), 1u);
  EXPECT_TRUE(cache.warm_samples(1).empty());
  ASSERT_EQ(cache.warm_samples(2).size(), 1u);
}

TEST(ResultCache, ConcurrentMixedTrafficStaysConsistent) {
  ResultCache cache(16);
  util::parallel_for(
      8,
      [&](std::size_t t) {
        for (int i = 0; i < 500; ++i) {
          const auto key = static_cast<std::uint64_t>((t * 31 + i) % 32);
          if (i % 3 == 0) {
            cache.put(key, result_with_cost(-double(key)));
          } else if (auto hit = cache.get(key)) {
            EXPECT_DOUBLE_EQ(hit->best_cost, -double(key));
          }
        }
      },
      8);
  EXPECT_LE(cache.size(), 16u);
}

}  // namespace
}  // namespace saim::service
