#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/result.hpp"
#include "service/job_queue.hpp"
#include "service/result_cache.hpp"
#include "util/parallel.hpp"

namespace saim::service {
namespace {

// ----------------------------------------------------------------- queue

TEST(JobQueue, FifoWithinOnePriority) {
  JobQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(JobQueue, HigherPriorityPopsFirst) {
  JobQueue<int> q;
  q.push(1, Priority::kLow);
  q.push(2, Priority::kNormal);
  q.push(3, Priority::kHigh);
  q.push(4, Priority::kNormal);
  q.push(5, Priority::kHigh);
  // Strict bands, FIFO inside each: high (3,5), normal (2,4), low (1).
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), 5);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 4);
  EXPECT_EQ(q.pop(), 1);
}

TEST(JobQueue, TryPopOnEmptyReturnsNothing) {
  JobQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
  q.push(9);
  EXPECT_EQ(q.try_pop(), 9);
}

TEST(JobQueue, CloseWakesBlockedConsumer) {
  JobQueue<int> q;
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(JobQueue, PushAfterCloseIsRejected) {
  JobQueue<int> q;
  q.close();
  EXPECT_FALSE(q.push(1));
  EXPECT_TRUE(q.closed());
}

TEST(JobQueue, DrainRemovesEverythingInPriorityOrder) {
  JobQueue<int> q;
  q.push(1, Priority::kLow);
  q.push(2, Priority::kHigh);
  q.push(3, Priority::kNormal);
  q.push(4, Priority::kHigh);
  const auto drained = q.drain();
  ASSERT_EQ(drained.size(), 4u);
  EXPECT_EQ(drained[0], 2);
  EXPECT_EQ(drained[1], 4);
  EXPECT_EQ(drained[2], 3);
  EXPECT_EQ(drained[3], 1);
  EXPECT_EQ(q.size(), 0u);
}

TEST(JobQueue, ConcurrentProducersLoseNothing) {
  JobQueue<int> q;
  constexpr int kPerProducer = 200;
  util::parallel_for(
      4,
      [&](std::size_t p) {
        for (int i = 0; i < kPerProducer; ++i) {
          q.push(static_cast<int>(p) * kPerProducer + i);
        }
      },
      4);
  EXPECT_EQ(q.size(), 4u * kPerProducer);
  std::vector<bool> seen(4 * kPerProducer, false);
  while (auto v = q.try_pop()) seen[static_cast<std::size_t>(*v)] = true;
  for (const bool s : seen) EXPECT_TRUE(s);
}

// ----------------------------------------------------------------- cache

std::shared_ptr<const core::SolveResult> result_with_cost(double cost) {
  auto r = std::make_shared<core::SolveResult>();
  r->found_feasible = true;
  r->best_cost = cost;
  return r;
}

TEST(ResultCache, MissThenHitReturnsSameObject) {
  ResultCache cache(4);
  EXPECT_EQ(cache.get(1), nullptr);
  const auto value = result_with_cost(-5.0);
  cache.put(1, value);
  const auto hit = cache.get(1);
  EXPECT_EQ(hit.get(), value.get());  // identity, not equality
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.put(1, result_with_cost(-1));
  cache.put(2, result_with_cost(-2));
  ASSERT_NE(cache.get(1), nullptr);  // bump 1: now 2 is LRU
  cache.put(3, result_with_cost(-3));
  EXPECT_EQ(cache.get(2), nullptr);  // evicted
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCache, OverwriteKeepsSingleEntry) {
  ResultCache cache(2);
  cache.put(1, result_with_cost(-1));
  cache.put(1, result_with_cost(-9));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(cache.get(1)->best_cost, -9);
}

TEST(ResultCache, ZeroCapacityDisables) {
  ResultCache cache(0);
  cache.put(1, result_with_cost(-1));
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCache, ConcurrentMixedTrafficStaysConsistent) {
  ResultCache cache(16);
  util::parallel_for(
      8,
      [&](std::size_t t) {
        for (int i = 0; i < 500; ++i) {
          const auto key = static_cast<std::uint64_t>((t * 31 + i) % 32);
          if (i % 3 == 0) {
            cache.put(key, result_with_cost(-double(key)));
          } else if (auto hit = cache.get(key)) {
            EXPECT_DOUBLE_EQ(hit->best_cost, -double(key));
          }
        }
      },
      8);
  EXPECT_LE(cache.size(), 16u);
}

}  // namespace
}  // namespace saim::service
