#include <gtest/gtest.h>

#include "anneal/backend.hpp"
#include "core/penalty_method.hpp"
#include "core/report.hpp"
#include "core/saim_solver.hpp"
#include "problems/qkp.hpp"

namespace saim::core {
namespace {

SolveResult small_solve(SaimOptions opts, const problems::QkpInstance& inst) {
  const auto mapping = problems::qkp_to_problem(inst);
  anneal::PBitBackend backend(pbit::Schedule::linear(10.0), 150);
  SaimSolver solver(mapping.problem, backend, opts);
  return solver.solve(make_qkp_evaluator(inst));
}

TEST(ReportCsv, HeaderAndRowShapeMatch) {
  const auto inst = problems::make_paper_qkp(12, 50, 9);
  SaimOptions opts;
  opts.iterations = 40;
  opts.eta = 20.0;
  opts.collect_feasible_costs = true;
  const auto result = small_solve(opts, inst);

  util::CsvWriter csv;
  write_report_header(csv);
  ReportRow row;
  row.instance = inst.name();
  row.method = "saim-pbit";
  row.reference_cost = result.found_feasible ? result.best_cost : -1.0;
  row.seconds = 0.5;
  report_result(csv, row, result);

  const std::string& out = csv.buffer();
  // Header + one data line.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  // Field count must match the header's.
  const auto header_end = out.find('\n');
  const auto commas_header = std::count(out.begin(),
                                        out.begin() +
                                            static_cast<std::ptrdiff_t>(
                                                header_end),
                                        ',');
  const auto commas_row =
      std::count(out.begin() + static_cast<std::ptrdiff_t>(header_end),
                 out.end(), ',');
  EXPECT_EQ(commas_header, commas_row);
  EXPECT_NE(out.find("12-50-9"), std::string::npos);
  EXPECT_NE(out.find("saim-pbit"), std::string::npos);
  // Reference == best -> best accuracy is exactly 100.
  EXPECT_NE(out.find("100"), std::string::npos);
}

TEST(ReportCsv, TtsFieldEmptyWithoutPerSampleCosts) {
  const auto inst = problems::make_paper_qkp(12, 50, 9);
  SaimOptions opts;
  opts.iterations = 20;
  opts.eta = 20.0;
  opts.collect_feasible_costs = false;  // no per-sample record
  const auto result = small_solve(opts, inst);

  util::CsvWriter csv;
  ReportRow row;
  row.instance = inst.name();
  row.method = "m";
  row.reference_cost = -1.0;
  report_result(csv, row, result);
  // Last field (tts99) must be empty -> row ends with a comma.
  const std::string& out = csv.buffer();
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out[out.size() - 2], ',');
}

TEST(Convergence, EarlyStopTriggersOnFlatLambda) {
  // eta = 0 makes lambda static from iteration 0, so once a feasible
  // sample shows up the patience counter runs out quickly.
  const auto inst = problems::make_paper_qkp(12, 25, 1);
  SaimOptions opts;
  opts.iterations = 500;
  opts.eta = 0.0;
  opts.penalty_alpha = 60.0;  // strong penalty: feasible samples early
  opts.convergence_patience = 5;
  opts.seed = 3;
  const auto result = small_solve(opts, inst);
  ASSERT_TRUE(result.found_feasible);
  EXPECT_LT(result.total_runs, 500u);
  EXPECT_GE(result.total_runs, 5u);
}

TEST(Convergence, DisabledPatienceRunsFullBudget) {
  const auto inst = problems::make_paper_qkp(12, 25, 1);
  SaimOptions opts;
  opts.iterations = 60;
  opts.eta = 0.0;
  opts.penalty_alpha = 60.0;
  opts.convergence_patience = 0;  // disabled
  const auto result = small_solve(opts, inst);
  EXPECT_EQ(result.total_runs, 60u);
}

TEST(Convergence, NoEarlyStopWithoutFeasibleSample) {
  // Tiny penalty and eta=0: likely nothing feasible, so even a flat lambda
  // must not stop the search.
  const auto inst = problems::make_paper_qkp(20, 50, 2);
  SaimOptions opts;
  opts.iterations = 50;
  opts.eta = 0.0;
  opts.penalty = 0.0001;
  opts.convergence_patience = 3;
  opts.seed = 1;
  const auto result = small_solve(opts, inst);
  if (!result.found_feasible) {
    EXPECT_EQ(result.total_runs, 50u);
  }
}

TEST(Convergence, SweepAccountingMatchesActualRuns) {
  const auto inst = problems::make_paper_qkp(12, 25, 1);
  SaimOptions opts;
  opts.iterations = 300;
  opts.eta = 0.0;
  opts.penalty_alpha = 60.0;
  opts.convergence_patience = 4;
  const auto result = small_solve(opts, inst);
  EXPECT_EQ(result.total_sweeps, result.total_runs * 150u);
}

}  // namespace
}  // namespace saim::core
