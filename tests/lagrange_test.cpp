#include "lagrange/lagrangian_model.hpp"

#include <gtest/gtest.h>

#include "ising/convert.hpp"
#include "problems/mkp.hpp"
#include "problems/portfolio.hpp"
#include "problems/qkp.hpp"
#include "util/rng.hpp"

namespace saim::lagrange {
namespace {

using problems::ConstrainedProblem;
using problems::LinearConstraint;

ConstrainedProblem toy_problem() {
  // min -x0 - 2 x1  s.t.  x0 + x1 = 1  over 2 binaries.
  ising::QuboModel f(2);
  f.add_linear(0, -1.0);
  f.add_linear(1, -2.0);
  LinearConstraint g;
  g.terms = {{0, 1.0}, {1, 1.0}};
  g.rhs = 1.0;
  return ConstrainedProblem(std::move(f), {g}, 2);
}

TEST(LagrangianModel, PenaltyExpansionMatchesDirectEvaluation) {
  const auto problem = toy_problem();
  LagrangianModel model(problem, 3.0);
  for (std::uint64_t code = 0; code < 4; ++code) {
    const std::vector<std::uint8_t> x = {
        static_cast<std::uint8_t>(code & 1),
        static_cast<std::uint8_t>((code >> 1) & 1)};
    const double g = static_cast<double>(x[0]) + x[1] - 1.0;
    const double expected = -1.0 * x[0] - 2.0 * x[1] + 3.0 * g * g;
    EXPECT_NEAR(model.qubo().energy(x), expected, 1e-12) << "code=" << code;
    EXPECT_NEAR(model.lagrangian(x), expected, 1e-12);
  }
}

TEST(LagrangianModel, LambdaTermAddsLinearly) {
  const auto problem = toy_problem();
  LagrangianModel model(problem, 3.0);
  const std::vector<double> lambda = {2.5};
  model.set_lambda(lambda);
  for (std::uint64_t code = 0; code < 4; ++code) {
    const std::vector<std::uint8_t> x = {
        static_cast<std::uint8_t>(code & 1),
        static_cast<std::uint8_t>((code >> 1) & 1)};
    const double g = static_cast<double>(x[0]) + x[1] - 1.0;
    const double expected =
        -1.0 * x[0] - 2.0 * x[1] + 3.0 * g * g + 2.5 * g;
    EXPECT_NEAR(model.qubo().energy(x), expected, 1e-12);
    EXPECT_NEAR(model.lagrangian(x), expected, 1e-12);
  }
}

TEST(LagrangianModel, IsingImageMatchesQubo) {
  const auto problem = toy_problem();
  LagrangianModel model(problem, 2.0);
  model.set_lambda(std::vector<double>{-1.5});
  for (std::uint64_t code = 0; code < 4; ++code) {
    const std::vector<std::uint8_t> x = {
        static_cast<std::uint8_t>(code & 1),
        static_cast<std::uint8_t>((code >> 1) & 1)};
    EXPECT_NEAR(model.ising().energy(ising::bits_to_spins(x)),
                model.qubo().energy(x), 1e-12);
  }
}

TEST(LagrangianModel, SetLambdaNeverTouchesCouplings) {
  const auto inst = problems::make_paper_qkp(20, 50, 1);
  const auto mapping = problems::qkp_to_problem(inst);
  LagrangianModel model(mapping.problem, 1.0);

  const std::size_t n = model.n();
  std::vector<double> couplings_before;
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = model.ising().row(i);
    couplings_before.insert(couplings_before.end(), row.begin(), row.end());
  }
  model.set_lambda(std::vector<double>{42.0});
  std::size_t idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = model.ising().row(i);
    for (const double v : row) {
      ASSERT_EQ(v, couplings_before[idx++]);
    }
  }
}

TEST(LagrangianModel, SetLambdaMatchesFreshRebuild) {
  // The incremental field refresh must be bit-equivalent (within fp
  // tolerance) to building a brand-new model with the lambda term folded in.
  const auto inst = problems::make_paper_qkp(15, 50, 2);
  const auto mapping = problems::qkp_to_problem(inst);
  LagrangianModel incremental(mapping.problem, 1.5);
  const std::vector<double> lambda = {0.7};
  incremental.set_lambda(lambda);

  // Fresh model: same problem but with lambda*g folded into the objective.
  ising::QuboModel f2(mapping.problem.n());
  mapping.problem.objective().for_each_quadratic(
      [&](std::size_t i, std::size_t j, double q) {
        f2.add_quadratic(i, j, q);
      });
  for (std::size_t i = 0; i < mapping.problem.n(); ++i) {
    f2.add_linear(i, mapping.problem.objective().linear(i));
  }
  f2.set_offset(mapping.problem.objective().offset());
  for (const auto& [j, aj] : mapping.problem.constraints()[0].terms) {
    f2.add_linear(j, lambda[0] * aj);
  }
  f2.add_offset(-lambda[0] * mapping.problem.constraints()[0].rhs);
  ConstrainedProblem folded(std::move(f2), mapping.problem.constraints(),
                            mapping.problem.num_decision());
  LagrangianModel fresh(folded, 1.5);

  util::Xoshiro256pp rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> x(mapping.problem.n());
    for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;
    ASSERT_NEAR(incremental.qubo().energy(x), fresh.qubo().energy(x), 1e-9);
    ASSERT_NEAR(incremental.ising().energy(ising::bits_to_spins(x)),
                fresh.ising().energy(ising::bits_to_spins(x)), 1e-9);
  }
}

TEST(LagrangianModel, MultipleConstraints) {
  // Two constraints with distinct multipliers.
  ising::QuboModel f(3);
  f.add_linear(0, -1.0);
  LinearConstraint g1;
  g1.terms = {{0, 1.0}, {1, 1.0}};
  g1.rhs = 1.0;
  LinearConstraint g2;
  g2.terms = {{1, 2.0}, {2, 1.0}};
  g2.rhs = 2.0;
  ConstrainedProblem problem(std::move(f), {g1, g2}, 3);
  LagrangianModel model(problem, 0.5);
  model.set_lambda(std::vector<double>{1.0, -2.0});

  for (std::uint64_t code = 0; code < 8; ++code) {
    std::vector<std::uint8_t> x(3);
    for (std::size_t i = 0; i < 3; ++i) {
      x[i] = static_cast<std::uint8_t>((code >> i) & 1ULL);
    }
    const double ga = static_cast<double>(x[0]) + x[1] - 1.0;
    const double gb = 2.0 * x[1] + x[2] - 2.0;
    const double expected =
        -1.0 * x[0] + 0.5 * (ga * ga + gb * gb) + 1.0 * ga - 2.0 * gb;
    EXPECT_NEAR(model.qubo().energy(x), expected, 1e-12);
  }
}

TEST(LagrangianModel, SetLambdaSizeMismatchThrows) {
  const auto problem = toy_problem();
  LagrangianModel model(problem, 1.0);
  EXPECT_THROW(model.set_lambda(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(LagrangianModel, NegativePenaltyThrows) {
  const auto problem = toy_problem();
  EXPECT_THROW(LagrangianModel(problem, -1.0), std::invalid_argument);
}

TEST(HeuristicPenalty, QkpFormulaMatchesPaper) {
  // P = alpha d N with d the coupling density and N incl. slack.
  const auto inst = problems::make_paper_qkp(50, 50, 1);
  const auto mapping = problems::qkp_to_problem(inst);
  const double d = mapping.problem.objective().density();
  const double n = static_cast<double>(mapping.problem.n());
  EXPECT_NEAR(heuristic_penalty(mapping.problem, 2.0), 2.0 * d * n, 1e-12);
}

TEST(HeuristicPenalty, LinearObjectiveUsesFixedSpinConvention) {
  ising::QuboModel f(9);
  f.add_linear(0, -1.0);
  ConstrainedProblem problem(std::move(f), {}, 9);
  // d = 2/(N+1) = 0.2 for N=9; P = 5 * 0.2 * 9 = 9.
  EXPECT_NEAR(heuristic_penalty(problem, 5.0), 9.0, 1e-12);
}

// Property sweep: QUBO image equals direct Lagrangian for random lambda on
// random QKP mappings.
class LagrangianProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LagrangianProperty, QuboImageEqualsDirectForm) {
  problems::QkpGeneratorParams p;
  p.n = 10;
  p.density = 0.5;
  p.seed = GetParam();
  const auto inst = problems::generate_qkp(p);
  const auto mapping = problems::qkp_to_problem(inst);
  LagrangianModel model(mapping.problem, 0.8);

  util::Xoshiro256pp rng(GetParam() + 77);
  for (int round = 0; round < 5; ++round) {
    const std::vector<double> lambda = {rng.uniform_sym() * 10.0};
    model.set_lambda(lambda);
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<std::uint8_t> x(mapping.problem.n());
      for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;
      ASSERT_NEAR(model.qubo().energy(x), model.lagrangian(x), 1e-9);
      ASSERT_NEAR(model.ising().energy(ising::bits_to_spins(x)),
                  model.lagrangian(x), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, LagrangianProperty,
                         ::testing::Range<std::uint64_t>(0, 8));

// Same property on multi-constraint MKP mappings: the incremental lambda
// refresh must stay consistent when several constraints move at once.
class LagrangianMkpProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(LagrangianMkpProperty, QuboImageEqualsDirectForm) {
  problems::MkpGeneratorParams p;
  p.n = 12;
  p.m = 4;
  p.seed = GetParam();
  const auto inst = problems::generate_mkp(p);
  const auto mapping = problems::mkp_to_problem(inst);
  LagrangianModel model(mapping.problem, 5.0);

  util::Xoshiro256pp rng(GetParam() + 321);
  std::vector<double> lambda(mapping.problem.num_constraints());
  for (int round = 0; round < 4; ++round) {
    for (auto& l : lambda) l = rng.uniform_sym() * 8.0;
    model.set_lambda(lambda);
    for (int trial = 0; trial < 15; ++trial) {
      std::vector<std::uint8_t> x(mapping.problem.n());
      for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;
      ASSERT_NEAR(model.qubo().energy(x), model.lagrangian(x), 1e-9);
      ASSERT_NEAR(model.ising().energy(ising::bits_to_spins(x)),
                  model.lagrangian(x), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, LagrangianMkpProperty,
                         ::testing::Range<std::uint64_t>(0, 6));

// And on the real-valued quadratic portfolio mapping, which exercises
// dense float couplings rather than integer-derived ones.
class LagrangianPortfolioProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LagrangianPortfolioProperty, QuboImageEqualsDirectForm) {
  problems::PortfolioGeneratorParams p;
  p.n = 12;
  p.seed = GetParam();
  const auto inst = problems::generate_portfolio(p);
  const auto mapping = problems::portfolio_to_problem(inst);
  LagrangianModel model(mapping.problem, 1.3);

  util::Xoshiro256pp rng(GetParam() + 654);
  for (int round = 0; round < 4; ++round) {
    const std::vector<double> lambda = {rng.uniform_sym() * 5.0};
    model.set_lambda(lambda);
    for (int trial = 0; trial < 15; ++trial) {
      std::vector<std::uint8_t> x(mapping.problem.n());
      for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;
      ASSERT_NEAR(model.qubo().energy(x), model.lagrangian(x), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, LagrangianPortfolioProperty,
                         ::testing::Range<std::uint64_t>(0, 6));

}  // namespace
}  // namespace saim::lagrange
