#include "problems/portfolio.hpp"

#include <gtest/gtest.h>

#include "anneal/backend.hpp"
#include "core/saim_solver.hpp"
#include "exact/exhaustive.hpp"
#include "util/rng.hpp"

namespace saim::problems {
namespace {

PortfolioInstance tiny_instance() {
  // 3 assets; Sigma diagonal {0.04, 0.01, 0.09} plus rho(0,1)=0.01.
  return PortfolioInstance(
      "tiny", {0.10, 0.05, 0.20},
      {0.04, 0.01, 0.00,
       0.01, 0.01, 0.00,
       0.00, 0.00, 0.09},
      {5, 3, 8}, 10, 2.0);
}

TEST(Portfolio, ReturnRiskObjective) {
  const auto inst = tiny_instance();
  const std::vector<std::uint8_t> x = {1, 1, 0};
  EXPECT_NEAR(inst.portfolio_return(x), 0.15, 1e-12);
  // risk = 0.04 + 0.01 + 2*0.01 = 0.07.
  EXPECT_NEAR(inst.portfolio_risk(x), 0.07, 1e-12);
  EXPECT_NEAR(inst.objective(x), -0.15 + 2.0 * 0.07, 1e-12);
}

TEST(Portfolio, FeasibilityIsBudgetCheck) {
  const auto inst = tiny_instance();
  EXPECT_TRUE(inst.feasible(std::vector<std::uint8_t>{1, 1, 0}));   // 8
  EXPECT_FALSE(inst.feasible(std::vector<std::uint8_t>{1, 1, 1}));  // 16
  EXPECT_EQ(inst.total_price(std::vector<std::uint8_t>{0, 1, 1}), 11);
}

TEST(Portfolio, ValidationRejectsBadShapes) {
  EXPECT_THROW(PortfolioInstance("x", {0.1}, {0.1, 0.2}, {1}, 5, 1.0),
               std::invalid_argument);  // Sigma not n*n
  EXPECT_THROW(PortfolioInstance("x", {0.1}, {0.1}, {1, 2}, 5, 1.0),
               std::invalid_argument);  // prices mismatch
  EXPECT_THROW(PortfolioInstance("x", {0.1}, {0.1}, {1}, -5, 1.0),
               std::invalid_argument);  // negative budget
  EXPECT_THROW(PortfolioInstance("x", {0.1, 0.2},
                                 {0.1, 0.5, 0.2, 0.1}, {1, 1}, 5, 1.0),
               std::invalid_argument);  // asymmetric Sigma
}

TEST(PortfolioGenerator, DeterministicAndPsd) {
  PortfolioGeneratorParams p;
  p.n = 20;
  p.seed = 3;
  const auto a = generate_portfolio(p);
  const auto b = generate_portfolio(p);
  EXPECT_EQ(a.budget(), b.budget());

  // PSD check via random quadratic forms (factor model guarantees it).
  util::Xoshiro256pp rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> x(a.n());
    for (auto& v : x) v = rng.bernoulli(0.5) ? 1 : 0;
    EXPECT_GE(a.portfolio_risk(x), -1e-12);
  }
}

TEST(PortfolioGenerator, BudgetFractionHolds) {
  PortfolioGeneratorParams p;
  p.n = 25;
  p.seed = 7;
  p.budget_fraction = 0.4;
  const auto inst = generate_portfolio(p);
  std::int64_t total = 0;
  for (std::size_t i = 0; i < inst.n(); ++i) total += inst.price(i);
  EXPECT_NEAR(static_cast<double>(inst.budget()),
              0.4 * static_cast<double>(total), 1.0);
}

TEST(PortfolioMapping, ObjectiveMatchesScaledInstance) {
  const auto inst = tiny_instance();
  const auto mapping = portfolio_to_problem(inst);
  util::Xoshiro256pp rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> x(mapping.problem.n());
    for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;
    const std::vector<std::uint8_t> decision(x.begin(), x.begin() + 3);
    EXPECT_NEAR(
        mapping.problem.objective_value(x) * mapping.objective_scale,
        inst.objective(decision), 1e-9);
  }
}

TEST(PortfolioMapping, SlackCompletesBudgetRow) {
  const auto inst = tiny_instance();
  const auto mapping = portfolio_to_problem(inst);
  const std::vector<std::uint8_t> decision = {1, 1, 0};  // price 8, gap 2
  auto slack_bits = mapping.slack.encode(2);
  std::vector<std::uint8_t> x = decision;
  x.insert(x.end(), slack_bits.begin(), slack_bits.end());
  EXPECT_NEAR(mapping.problem.max_violation(x), 0.0, 1e-12);
}

TEST(PortfolioMapping, NormalizationBoundsCoefficients) {
  PortfolioGeneratorParams p;
  p.n = 15;
  p.seed = 2;
  const auto inst = generate_portfolio(p);
  const auto mapping = portfolio_to_problem(inst);
  EXPECT_LE(mapping.problem.objective().max_abs_coefficient(), 1.0 + 1e-9);
}

TEST(PortfolioSaim, FindsExhaustiveOptimum) {
  PortfolioGeneratorParams p;
  p.n = 12;
  p.seed = 11;
  const auto inst = generate_portfolio(p);

  const auto exact = exact::exhaustive_minimize(
      inst.n(), [&](std::span<const std::uint8_t> x) {
        exact::Verdict v;
        v.feasible = inst.feasible(x);
        v.cost = inst.objective(x);
        return v;
      });
  ASSERT_TRUE(exact.found);

  const auto mapping = portfolio_to_problem(inst);
  anneal::PBitBackend backend(pbit::Schedule::linear(10.0), 400);
  core::SaimOptions opts;
  opts.iterations = 200;
  opts.eta = 5.0;
  opts.penalty_alpha = 2.0;
  opts.seed = 3;
  core::SaimSolver solver(mapping.problem, backend, opts);
  const auto result = solver.solve(
      [&](std::span<const std::uint8_t> x) {
        core::SampleVerdict v;
        const auto decision = x.first(inst.n());
        v.feasible = inst.feasible(decision);
        v.cost = inst.objective(decision);
        return v;
      });
  ASSERT_TRUE(result.found_feasible);
  EXPECT_NEAR(result.best_cost, exact.best_cost, 1e-9);
}

// Property: risk aversion monotonicity — raising kappa never increases the
// risk of the exhaustive optimal portfolio.
class RiskAversionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RiskAversionSweep, HigherKappaLowersOptimalRisk) {
  PortfolioGeneratorParams p;
  p.n = 10;
  p.seed = GetParam();
  p.risk_aversion = 0.5;
  const auto low = generate_portfolio(p);
  p.risk_aversion = 8.0;
  const auto high = generate_portfolio(p);

  auto optimal_risk = [](const PortfolioInstance& inst) {
    const auto r = exact::exhaustive_minimize(
        inst.n(), [&](std::span<const std::uint8_t> x) {
          exact::Verdict v;
          v.feasible = inst.feasible(x);
          v.cost = inst.objective(x);
          return v;
        });
    return inst.portfolio_risk(r.best_x);
  };
  EXPECT_LE(optimal_risk(high), optimal_risk(low) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, RiskAversionSweep,
                         ::testing::Range<std::uint64_t>(0, 6));

}  // namespace
}  // namespace saim::problems
