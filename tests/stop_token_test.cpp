#include "util/stop_token.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "anneal/backend.hpp"
#include "core/penalty_method.hpp"
#include "core/saim_solver.hpp"
#include "lagrange/lagrangian_model.hpp"
#include "pbit/schedule.hpp"
#include "problems/qkp.hpp"

namespace saim {
namespace {

TEST(StopToken, DefaultTokenNeverStops) {
  util::StopToken token;
  EXPECT_FALSE(token.possible());
  EXPECT_FALSE(token.stop_requested());
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.deadline_expired());
}

TEST(StopToken, RequestStopTripsEveryToken) {
  util::StopSource source;
  const util::StopToken token = source.token();
  EXPECT_TRUE(token.possible());
  EXPECT_FALSE(token.stop_requested());
  source.request_stop();
  EXPECT_TRUE(token.stop_requested());
  EXPECT_TRUE(token.cancelled());
  EXPECT_FALSE(token.deadline_expired());
  EXPECT_TRUE(source.token().stop_requested());  // late tokens see it too
}

TEST(StopToken, DeadlineExpiresWithoutCancel) {
  auto source =
      util::StopSource::with_deadline(std::chrono::steady_clock::now() -
                                      std::chrono::milliseconds(1));
  const util::StopToken token = source.token();
  EXPECT_TRUE(token.stop_requested());
  EXPECT_TRUE(token.deadline_expired());
  EXPECT_FALSE(token.cancelled());  // distinguishes kDeadline from kCancelled
}

TEST(StopToken, FutureDeadlineDoesNotStopYet) {
  auto source = util::StopSource::after(std::chrono::hours(1));
  EXPECT_FALSE(source.token().stop_requested());
}

class SolverStopTest : public ::testing::Test {
 protected:
  SolverStopTest()
      : instance_(problems::make_paper_qkp(30, 50, 1)),
        mapping_(problems::qkp_to_problem(instance_)) {}

  core::SolveResult solve_with(util::StopToken token,
                               std::size_t iterations = 50) {
    anneal::PBitBackend backend(pbit::Schedule::linear(10.0), 100);
    core::SaimOptions options;
    options.iterations = iterations;
    options.seed = 3;
    core::SaimSolver solver(mapping_.problem, backend, options);
    return solver.solve(core::make_qkp_evaluator(instance_), token);
  }

  problems::QkpInstance instance_;
  problems::QkpMapping mapping_;
};

TEST_F(SolverStopTest, CompletesWithDefaultToken) {
  const auto result = solve_with(util::StopToken{});
  EXPECT_EQ(result.status, core::Status::kCompleted);
  EXPECT_EQ(result.total_runs, 50u);
}

TEST_F(SolverStopTest, PreCancelledTokenReturnsEmptyPartial) {
  util::StopSource source;
  source.request_stop();
  const auto result = solve_with(source.token());
  EXPECT_EQ(result.status, core::Status::kCancelled);
  EXPECT_EQ(result.total_runs, 0u);
  EXPECT_FALSE(result.found_feasible);
}

TEST_F(SolverStopTest, ExpiredDeadlineReportsDeadlineStatus) {
  auto source =
      util::StopSource::with_deadline(std::chrono::steady_clock::now());
  const auto result = solve_with(source.token());
  EXPECT_EQ(result.status, core::Status::kDeadline);
  EXPECT_EQ(result.total_runs, 0u);
}

TEST_F(SolverStopTest, MidSolveCancelKeepsPartialProgress) {
  // Cancel from another thread while the dual ascent runs; the solver must
  // come back early with the samples it already judged.
  util::StopSource source;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    source.request_stop();
  });
  const auto result = solve_with(source.token(), 1000000);
  canceller.join();
  EXPECT_EQ(result.status, core::Status::kCancelled);
  EXPECT_GT(result.total_runs, 0u);
  EXPECT_LT(result.total_runs, 1000000u);
}

TEST_F(SolverStopTest, CancelledResultIsPrefixOfFullRun) {
  // Determinism of partial results at outer-iteration granularity: a solve
  // stopped after its RNG stream saw k iterations matches the first k
  // iterations of an unstopped solve (same seed).
  anneal::PBitBackend backend(pbit::Schedule::linear(10.0), 100);
  core::SaimOptions options;
  options.iterations = 20;
  options.seed = 3;
  options.record_history = true;
  core::SaimSolver full_solver(mapping_.problem, backend, options);
  const auto full =
      full_solver.solve(core::make_qkp_evaluator(instance_));

  anneal::PBitBackend backend2(pbit::Schedule::linear(10.0), 100);
  // A "cancelled" run that stops by exhausting iterations = 7 is the
  // reference; emulate via options. (A token-stopped run lands on a
  // timing-dependent k, so compare through the recorded history instead.)
  core::SaimOptions short_options = options;
  short_options.iterations = 7;
  core::SaimSolver seven(mapping_.problem, backend2, short_options);
  const auto partial = seven.solve(core::make_qkp_evaluator(instance_));

  ASSERT_GE(full.history.size(), 7u);
  ASSERT_EQ(partial.history.size(), 7u);
  for (std::size_t k = 0; k < 7; ++k) {
    EXPECT_DOUBLE_EQ(partial.history[k].sample_cost,
                     full.history[k].sample_cost);
    EXPECT_DOUBLE_EQ(partial.history[k].lagrangian_energy,
                     full.history[k].lagrangian_energy);
  }
}

TEST_F(SolverStopTest, StopDuringFinalIterationDowngradesStatus) {
  // One outer iteration whose inner run is truncated by the deadline: the
  // loop exits without re-polling the token, but the result must still
  // report kDeadline — a kCompleted here would let services cache a
  // timing-dependent truncated solve.
  anneal::PBitBackend backend(pbit::Schedule::linear(10.0), 50000000);
  core::SaimOptions options;
  options.iterations = 1;
  options.seed = 3;
  core::SaimSolver solver(mapping_.problem, backend, options);
  auto source =
      util::StopSource::after(std::chrono::milliseconds(20));
  const auto result =
      solver.solve(core::make_qkp_evaluator(instance_), source.token());
  EXPECT_EQ(result.status, core::Status::kDeadline);
  EXPECT_EQ(result.total_runs, 1u);
  EXPECT_LT(result.total_sweeps, 50000000u);  // the run really truncated
}

TEST(BackendStop, SequentialBatchReturnsPartialBatch) {
  const auto inst = problems::make_paper_qkp(20, 50, 1);
  const auto mapping = problems::qkp_to_problem(inst);
  anneal::PBitBackend backend(pbit::Schedule::linear(5.0), 50);
  // bind through a solver-independent path
  lagrange::LagrangianModel model(mapping.problem, 10.0);
  backend.bind(model.ising());

  util::StopSource source;
  backend.set_stop_token(source.token());
  backend.set_warm_restart(true);  // forces the sequential base run_batch
  util::Xoshiro256pp rng(1);
  source.request_stop();
  const auto runs = backend.run_batch(rng, 8);
  // The first run always happens; the stop check sits between runs.
  EXPECT_EQ(runs.size(), 1u);
}

TEST(BackendStop, ParallelBatchRefusesToStartWhenStopped) {
  const auto inst = problems::make_paper_qkp(20, 50, 1);
  const auto mapping = problems::qkp_to_problem(inst);
  anneal::PBitBackend backend(pbit::Schedule::linear(5.0), 50);
  lagrange::LagrangianModel model(mapping.problem, 10.0);
  backend.bind(model.ising());

  util::StopSource source;
  source.request_stop();
  backend.set_stop_token(source.token());
  util::Xoshiro256pp rng(1);
  EXPECT_TRUE(backend.run_batch(rng, 8).empty());
}

TEST(BackendStop, AnnealHonoursChunkedStopChecks) {
  const auto inst = problems::make_paper_qkp(20, 50, 1);
  const auto mapping = problems::qkp_to_problem(inst);
  lagrange::LagrangianModel model(mapping.problem, 10.0);
  pbit::PBitMachine machine(model.ising());

  util::StopSource source;
  source.request_stop();
  const util::StopToken token = source.token();
  pbit::AnnealOptions options;
  options.sweeps = 10000;
  options.stop = &token;
  options.stop_interval = 16;
  util::Xoshiro256pp rng(7);
  const auto result =
      machine.anneal(pbit::Schedule::linear(5.0), options, rng);
  // Stopped at the first chunk boundary: a valid partial sample with the
  // true sweep count.
  EXPECT_EQ(result.sweeps, 16u);
  EXPECT_EQ(result.last.size(), machine.n());
}

}  // namespace
}  // namespace saim
