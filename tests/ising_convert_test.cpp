#include "ising/convert.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace saim::ising {
namespace {

QuboModel random_qubo(util::Xoshiro256pp& rng, std::size_t n) {
  QuboModel q(n);
  for (std::size_t i = 0; i < n; ++i) {
    q.add_linear(i, rng.uniform_sym() * 4.0);
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(0.7)) {
        q.add_quadratic(i, j, rng.uniform_sym() * 4.0);
      }
    }
  }
  q.add_offset(rng.uniform_sym() * 2.0);
  return q;
}

Bits bits_from_code(std::uint64_t code, std::size_t n) {
  Bits x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<std::uint8_t>((code >> i) & 1ULL);
  }
  return x;
}

TEST(BitsSpins, RoundTrip) {
  const Bits x = {1, 0, 0, 1, 1};
  const Spins m = bits_to_spins(x);
  EXPECT_EQ(m, (Spins{1, -1, -1, 1, 1}));
  EXPECT_EQ(spins_to_bits(m), x);
}

// Exhaustive check on every configuration: the Ising image preserves energy.
class ConvertExhaustive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConvertExhaustive, QuboToIsingPreservesEnergy) {
  util::Xoshiro256pp rng(GetParam());
  const std::size_t n = 2 + rng.below(7);  // up to 8 variables -> 256 states
  const QuboModel q = random_qubo(rng, n);
  const IsingModel ising = qubo_to_ising(q);
  for (std::uint64_t code = 0; code < (1ULL << n); ++code) {
    const Bits x = bits_from_code(code, n);
    const Spins m = bits_to_spins(x);
    ASSERT_NEAR(q.energy(x), ising.energy(m), 1e-9) << "code=" << code;
  }
}

TEST_P(ConvertExhaustive, IsingToQuboPreservesEnergy) {
  util::Xoshiro256pp rng(GetParam() + 5000);
  const std::size_t n = 2 + rng.below(7);
  IsingModel ising(n);
  for (std::size_t i = 0; i < n; ++i) {
    ising.add_field(i, rng.uniform_sym() * 3.0);
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(0.6)) {
        ising.add_coupling(i, j, rng.uniform_sym() * 3.0);
      }
    }
  }
  ising.add_offset(rng.uniform_sym());
  const QuboModel q = ising_to_qubo(ising);
  for (std::uint64_t code = 0; code < (1ULL << n); ++code) {
    const Bits x = bits_from_code(code, n);
    const Spins m = bits_to_spins(x);
    ASSERT_NEAR(ising.energy(m), q.energy(x), 1e-9);
  }
}

TEST_P(ConvertExhaustive, RoundTripIsIdentityOnEnergies) {
  util::Xoshiro256pp rng(GetParam() + 9000);
  const std::size_t n = 2 + rng.below(6);
  const QuboModel q = random_qubo(rng, n);
  const QuboModel q2 = ising_to_qubo(qubo_to_ising(q));
  for (std::uint64_t code = 0; code < (1ULL << n); ++code) {
    const Bits x = bits_from_code(code, n);
    ASSERT_NEAR(q.energy(x), q2.energy(x), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomModels, ConvertExhaustive,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(RefreshFields, MatchesFullConversionAfterLinearChange) {
  util::Xoshiro256pp rng(77);
  QuboModel q = random_qubo(rng, 6);
  IsingModel ising = qubo_to_ising(q);

  // Change only linear terms and the offset (what a lambda update does).
  q.set_linear(0, 9.0);
  q.set_linear(3, -2.5);
  q.set_offset(1.25);
  refresh_fields_from_qubo(q, ising);

  const IsingModel reference = qubo_to_ising(q);
  for (std::size_t i = 0; i < q.n(); ++i) {
    EXPECT_NEAR(ising.field(i), reference.field(i), 1e-12);
  }
  EXPECT_NEAR(ising.offset(), reference.offset(), 1e-12);

  for (std::uint64_t code = 0; code < (1ULL << 6); ++code) {
    const Bits x = bits_from_code(code, 6);
    ASSERT_NEAR(q.energy(x), ising.energy(bits_to_spins(x)), 1e-9);
  }
}

TEST(RefreshFields, DimensionMismatchThrows) {
  QuboModel q(3);
  IsingModel ising(4);
  EXPECT_THROW(refresh_fields_from_qubo(q, ising), std::invalid_argument);
}

}  // namespace
}  // namespace saim::ising
