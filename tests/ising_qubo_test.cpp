#include "ising/qubo_model.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace saim::ising {
namespace {

TEST(QuboModel, EmptyModelZeroEnergy) {
  QuboModel q(3);
  const Bits x = {1, 0, 1};
  EXPECT_EQ(q.energy(x), 0.0);
}

TEST(QuboModel, LinearOnly) {
  QuboModel q(3);
  q.add_linear(0, 2.0);
  q.add_linear(2, -5.0);
  EXPECT_DOUBLE_EQ(q.energy(Bits{1, 0, 1}), -3.0);
  EXPECT_DOUBLE_EQ(q.energy(Bits{0, 1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(q.energy(Bits{1, 1, 0}), 2.0);
}

TEST(QuboModel, QuadraticCountedOnce) {
  QuboModel q(2);
  q.add_quadratic(0, 1, 3.0);
  EXPECT_DOUBLE_EQ(q.energy(Bits{1, 1}), 3.0);
  EXPECT_DOUBLE_EQ(q.energy(Bits{1, 0}), 0.0);
}

TEST(QuboModel, QuadraticSymmetricStorage) {
  QuboModel q(3);
  q.add_quadratic(2, 0, 4.0);
  EXPECT_DOUBLE_EQ(q.quadratic(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(q.quadratic(2, 0), 4.0);
}

TEST(QuboModel, QuadraticAccumulates) {
  QuboModel q(2);
  q.add_quadratic(0, 1, 1.0);
  q.add_quadratic(1, 0, 2.0);
  EXPECT_DOUBLE_EQ(q.quadratic(0, 1), 3.0);
}

TEST(QuboModel, DiagonalFoldsIntoLinear) {
  // x_i^2 == x_i for binary variables.
  QuboModel q(2);
  q.add_quadratic(1, 1, 5.0);
  EXPECT_DOUBLE_EQ(q.linear(1), 5.0);
  EXPECT_DOUBLE_EQ(q.quadratic(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(q.energy(Bits{0, 1}), 5.0);
}

TEST(QuboModel, OffsetAddsToAllStates) {
  QuboModel q(1);
  q.add_offset(7.5);
  EXPECT_DOUBLE_EQ(q.energy(Bits{0}), 7.5);
  EXPECT_DOUBLE_EQ(q.energy(Bits{1}), 7.5);
}

TEST(QuboModel, OutOfRangeThrows) {
  QuboModel q(2);
  EXPECT_THROW(q.add_linear(2, 1.0), std::out_of_range);
  EXPECT_THROW(q.add_quadratic(0, 5, 1.0), std::out_of_range);
  EXPECT_THROW((void)q.linear(9), std::out_of_range);
  EXPECT_THROW((void)q.quadratic(0, 2), std::out_of_range);
  EXPECT_THROW((void)q.row(2), std::out_of_range);
}

TEST(QuboModel, NnzAndDensity) {
  QuboModel q(4);
  EXPECT_EQ(q.nnz(), 0u);
  q.add_quadratic(0, 1, 1.0);
  q.add_quadratic(2, 3, -1.0);
  EXPECT_EQ(q.nnz(), 2u);
  EXPECT_DOUBLE_EQ(q.density(), 2.0 / 6.0);
}

TEST(QuboModel, CancelledCouplingNotCounted) {
  QuboModel q(2);
  q.add_quadratic(0, 1, 1.0);
  q.add_quadratic(0, 1, -1.0);
  EXPECT_EQ(q.nnz(), 0u);
}

TEST(QuboModel, MaxAbsCoefficient) {
  QuboModel q(3);
  q.add_linear(0, -9.0);
  q.add_quadratic(1, 2, 4.0);
  EXPECT_DOUBLE_EQ(q.max_abs_coefficient(), 9.0);
}

TEST(QuboModel, LocalFieldMatchesDefinition) {
  QuboModel q(3);
  q.add_linear(0, 1.0);
  q.add_quadratic(0, 1, 2.0);
  q.add_quadratic(0, 2, -3.0);
  const Bits x = {0, 1, 1};
  EXPECT_DOUBLE_EQ(q.local_field(x, 0), 1.0 + 2.0 - 3.0);
}

TEST(QuboModel, ForEachQuadraticVisitsUpperTriangle) {
  QuboModel q(3);
  q.add_quadratic(0, 2, 1.5);
  q.add_quadratic(1, 2, -2.5);
  int visits = 0;
  q.for_each_quadratic([&](std::size_t i, std::size_t j, double v) {
    EXPECT_LT(i, j);
    if (i == 0) EXPECT_DOUBLE_EQ(v, 1.5);
    if (i == 1) EXPECT_DOUBLE_EQ(v, -2.5);
    ++visits;
  });
  EXPECT_EQ(visits, 2);
}

// Property sweep: flip_delta must equal the brute-force energy difference
// on random dense models and random states.
class QuboFlipDelta : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuboFlipDelta, MatchesFullRecomputation) {
  util::Xoshiro256pp rng(GetParam());
  const std::size_t n = 3 + rng.below(12);
  QuboModel q(n);
  for (std::size_t i = 0; i < n; ++i) {
    q.add_linear(i, rng.uniform_sym() * 5.0);
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(0.6)) {
        q.add_quadratic(i, j, rng.uniform_sym() * 5.0);
      }
    }
  }
  q.add_offset(rng.uniform_sym());

  Bits x(n);
  for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;

  for (std::size_t i = 0; i < n; ++i) {
    const double base = q.energy(x);
    const double predicted = q.flip_delta(x, i);
    Bits y = x;
    y[i] ^= 1;
    EXPECT_NEAR(q.energy(y) - base, predicted, 1e-9)
        << "flip of bit " << i << " for seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomModels, QuboFlipDelta,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace saim::ising
