// Edge-case and failure-injection tests across modules: degenerate sizes,
// zero/empty inputs, extreme parameters, and API misuse that must fail
// loudly rather than corrupt state.
#include <gtest/gtest.h>

#include <sstream>

#include "anneal/backend.hpp"
#include "core/penalty_method.hpp"
#include "core/result.hpp"
#include "core/saim_solver.hpp"
#include "ising/convert.hpp"
#include "ising/graph.hpp"
#include "lagrange/lagrangian_model.hpp"
#include "pbit/pbit_machine.hpp"
#include "problems/mkp.hpp"
#include "problems/qkp.hpp"
#include "problems/slack.hpp"

namespace saim {
namespace {

TEST(EdgeCases, SingleVariableQubo) {
  ising::QuboModel q(1);
  q.add_linear(0, -2.0);
  EXPECT_DOUBLE_EQ(q.energy(ising::Bits{1}), -2.0);
  EXPECT_DOUBLE_EQ(q.energy(ising::Bits{0}), 0.0);
  EXPECT_DOUBLE_EQ(q.flip_delta(ising::Bits{0}, 0), -2.0);
  EXPECT_EQ(q.nnz(), 0u);
  EXPECT_DOUBLE_EQ(q.density(), 0.0);
}

TEST(EdgeCases, EmptyQuboConversionRoundTrip) {
  ising::QuboModel q(0);
  const auto ising_model = ising::qubo_to_ising(q);
  EXPECT_EQ(ising_model.n(), 0u);
  const auto back = ising::ising_to_qubo(ising_model);
  EXPECT_EQ(back.n(), 0u);
}

TEST(EdgeCases, PBitMachineOnSingleSpin) {
  ising::IsingModel model(1);
  model.add_field(0, 1.0);
  pbit::PBitMachine machine(model);
  util::Xoshiro256pp rng(1);
  pbit::AnnealOptions opts;
  opts.sweeps = 50;
  const auto result = machine.anneal(pbit::Schedule::linear(20.0), opts, rng);
  EXPECT_EQ(result.last[0], 1);
  EXPECT_DOUBLE_EQ(result.last_energy, -1.0);
}

TEST(EdgeCases, AnnealWithZeroSweepsReturnsStart) {
  ising::IsingModel model(4);
  model.add_coupling(0, 1, 1.0);
  pbit::PBitMachine machine(model);
  util::Xoshiro256pp rng(2);
  ising::Spins start = {1, -1, 1, -1};
  pbit::AnnealOptions opts;
  opts.sweeps = 0;
  const auto result =
      machine.anneal_from(start, pbit::Schedule::linear(5.0), opts, rng);
  EXPECT_EQ(result.last, start);
  EXPECT_DOUBLE_EQ(result.last_energy, model.energy(start));
}

TEST(EdgeCases, SampleWithZeroSamplesNeverCallsObserver) {
  ising::IsingModel model(3);
  pbit::PBitMachine machine(model);
  util::Xoshiro256pp rng(3);
  bool called = false;
  machine.sample(1.0, 10, 0, rng, [&](const ising::Spins&) { called = true; });
  EXPECT_FALSE(called);
}

TEST(EdgeCases, ConstrainedProblemWithNoConstraints) {
  ising::QuboModel f(3);
  f.add_linear(0, -1.0);
  problems::ConstrainedProblem p(std::move(f), {}, 3);
  EXPECT_EQ(p.num_constraints(), 0u);
  const ising::Bits x = {1, 0, 0};
  EXPECT_TRUE(p.constraint_values(x).empty());
  EXPECT_DOUBLE_EQ(p.violation_sq(x), 0.0);
  EXPECT_DOUBLE_EQ(p.max_violation(x), 0.0);
  // SAIM degenerates gracefully to repeated unconstrained minimization.
  lagrange::LagrangianModel model(p, 1.0);
  EXPECT_DOUBLE_EQ(model.lagrangian(x), -1.0);
  model.set_lambda({});
  EXPECT_DOUBLE_EQ(model.qubo().energy(x), -1.0);
}

TEST(EdgeCases, ConstrainedProblemValidation) {
  ising::QuboModel f(2);
  EXPECT_THROW(problems::ConstrainedProblem(std::move(f), {}, 3),
               std::invalid_argument);
  ising::QuboModel g(2);
  problems::LinearConstraint bad;
  bad.terms = {{5, 1.0}};
  EXPECT_THROW(problems::ConstrainedProblem(std::move(g), {bad}, 2),
               std::invalid_argument);
}

TEST(EdgeCases, QkpAllItemsFitTrivially) {
  // Capacity >= total weight: every selection is feasible and SAIM's best
  // must be the all-ones profit.
  std::vector<std::int64_t> w(4 * 4, 0);
  const problems::QkpInstance inst("fits", {1, 2, 3, 4}, w, {1, 1, 1, 1},
                                   100);
  EXPECT_TRUE(inst.feasible(std::vector<std::uint8_t>{1, 1, 1, 1}));
  const auto mapping = problems::qkp_to_problem(inst);
  anneal::PBitBackend backend(pbit::Schedule::linear(10.0), 100);
  core::SaimOptions opts;
  opts.iterations = 20;
  opts.eta = 5.0;
  core::SaimSolver solver(mapping.problem, backend, opts);
  const auto result = solver.solve(core::make_qkp_evaluator(inst));
  ASSERT_TRUE(result.found_feasible);
  EXPECT_DOUBLE_EQ(result.best_cost, -10.0);
}

TEST(EdgeCases, MkpZeroCapacityForcesEmptySelection) {
  const problems::MkpInstance inst("zero", {5, 7}, {1, 1, 1, 1}, {0, 10});
  EXPECT_FALSE(inst.feasible(std::vector<std::uint8_t>{1, 0}));
  EXPECT_TRUE(inst.feasible(std::vector<std::uint8_t>{0, 0}));
  const auto mapping = problems::mkp_to_problem(inst);
  // Zero capacity -> zero slack bits for that row.
  EXPECT_EQ(mapping.slack[0].num_bits(), 0u);
}

TEST(EdgeCases, SlackEncodingHugeBound) {
  const auto enc = problems::make_slack_encoding((std::int64_t{1} << 40));
  EXPECT_EQ(enc.num_bits(), 41u);
  EXPECT_EQ(enc.decode(enc.encode(123456789012LL)), 123456789012LL);
}

TEST(EdgeCases, OptimalityPercentEdge) {
  core::SolveResult r;
  EXPECT_DOUBLE_EQ(r.optimality_percent(-100.0), 0.0);  // no samples
  r.feasible_costs = {-100.0, -99.0, -100.0, -100.0};
  EXPECT_DOUBLE_EQ(r.optimality_percent(-100.0), 75.0);
  EXPECT_DOUBLE_EQ(r.optimality_percent(-101.0), 0.0);
  EXPECT_DOUBLE_EQ(r.optimality_percent(-99.0), 100.0);
}

TEST(EdgeCases, GraphLoadFailureModes) {
  std::stringstream empty("");
  EXPECT_THROW(ising::Graph::load(empty), std::runtime_error);
  std::stringstream truncated("3 2\n0 1 1.0\n");
  EXPECT_THROW(ising::Graph::load(truncated), std::runtime_error);
  std::stringstream bad_vertex("2 1\n0 5 1.0\n");
  EXPECT_THROW(ising::Graph::load(bad_vertex), std::out_of_range);
}

TEST(EdgeCases, ScheduleZeroTotalSweeps) {
  // total = 0 is degenerate; beta() must still return a finite value.
  const auto s = pbit::Schedule::linear(10.0);
  EXPECT_DOUBLE_EQ(s.beta(0, 0), 10.0);
}

TEST(EdgeCases, LagrangianWithZeroPenaltyIsPureLagrangian) {
  ising::QuboModel f(2);
  f.add_linear(0, -1.0);
  problems::LinearConstraint g;
  g.terms = {{0, 1.0}, {1, 1.0}};
  g.rhs = 1.0;
  problems::ConstrainedProblem p(std::move(f), {g}, 2);
  lagrange::LagrangianModel model(p, 0.0);
  model.set_lambda(std::vector<double>{3.0});
  const ising::Bits x = {1, 1};
  // L = f + 0 + 3*(2-1) = -1 + 3.
  EXPECT_DOUBLE_EQ(model.qubo().energy(x), 2.0);
}

TEST(EdgeCases, EvaluatorsHandleAllZeroConfiguration) {
  const auto qkp = problems::make_paper_qkp(10, 25, 1);
  const auto eval = core::make_qkp_evaluator(qkp);
  const std::vector<std::uint8_t> zeros(qkp.n() + 8, 0);
  const auto v = eval(zeros);
  EXPECT_TRUE(v.feasible);
  EXPECT_DOUBLE_EQ(v.cost, 0.0);
}

}  // namespace
}  // namespace saim
