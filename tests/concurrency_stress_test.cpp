// Concurrency stress suite — small, fast hammers for the lock-protected
// containers the solve service is built from. Each test drives one
// component from several threads at once and then checks a conservation
// invariant (nothing lost, nothing duplicated, counters coherent).
//
// These tests earn their keep under ThreadSanitizer: CI's tsan tier runs
// them with -fsanitize=thread, where any unsynchronized access the static
// annotations (util/thread_annotations.hpp) could not see becomes a hard
// failure. Thread and iteration counts are sized to finish in well under
// a second per test on a laptop, so the suite stays tier-1.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/result.hpp"
#include "obs/metrics.hpp"
#include "service/job_queue.hpp"
#include "service/result_cache.hpp"

namespace saim {
namespace {

constexpr std::size_t kThreads = 4;

// ---------------------------------------------------------------- JobQueue

TEST(ConcurrencyStress, JobQueuePushPopDrainConservesItems) {
  service::JobQueue<int> queue;
  constexpr int kPerProducer = 2000;

  std::atomic<std::uint64_t> popped{0};
  std::atomic<std::uint64_t> drained{0};
  std::atomic<std::uint64_t> popped_sum{0};
  std::atomic<std::uint64_t> drained_sum{0};

  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&queue, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        const auto priority = static_cast<service::Priority>(i % 3);
        const int value = static_cast<int>(t) * kPerProducer + i;
        ASSERT_TRUE(queue.push(value, priority));
      }
    });
  }

  std::vector<std::thread> consumers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    consumers.emplace_back([&] {
      while (auto item = queue.pop()) {
        popped.fetch_add(1, std::memory_order_relaxed);
        popped_sum.fetch_add(static_cast<std::uint64_t>(*item),
                             std::memory_order_relaxed);
      }
    });
  }

  // A scavenger racing the consumers: batch-drains even values the way
  // the service's batch scheduler pulls same-key twins mid-stream.
  std::thread scavenger([&] {
    for (int round = 0; round < 300; ++round) {
      for (const int v :
           queue.drain_matching(8, [](const int& x) { return x % 2 == 0; })) {
        drained.fetch_add(1, std::memory_order_relaxed);
        drained_sum.fetch_add(static_cast<std::uint64_t>(v),
                              std::memory_order_relaxed);
      }
      std::this_thread::yield();
    }
  });

  for (auto& p : producers) p.join();
  scavenger.join();
  queue.close();  // consumers exit once the backlog is gone
  for (auto& c : consumers) c.join();

  constexpr std::uint64_t kTotal = kThreads * kPerProducer;
  EXPECT_EQ(popped.load() + drained.load(), kTotal);
  // Every produced value left the queue exactly once: the value sums
  // (unique across producers) must add up to sum(0 .. kTotal-1).
  EXPECT_EQ(popped_sum.load() + drained_sum.load(),
            kTotal * (kTotal - 1) / 2);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(ConcurrencyStress, JobQueueCloseRacingPushDropsCleanly) {
  service::JobQueue<int> queue;
  std::atomic<std::uint64_t> accepted{0};

  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        if (queue.push(i)) accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread closer([&] {
    std::this_thread::yield();
    queue.close();
  });
  for (auto& p : producers) p.join();
  closer.join();

  // Whatever was accepted before close() is still fully poppable; pushes
  // that lost the race were reported dropped, not silently half-queued.
  EXPECT_EQ(queue.drain().size(), accepted.load());
  EXPECT_TRUE(queue.closed());
}

// -------------------------------------------------------------- ResultCache

std::shared_ptr<const core::SolveResult> make_result(std::size_t sweeps) {
  auto result = std::make_shared<core::SolveResult>();
  result->status = core::Status::kCompleted;
  result->total_sweeps = sweeps;
  return result;
}

TEST(ConcurrencyStress, ResultCacheConcurrentPutGetEvict) {
  // Capacity far below the key space, so eviction runs constantly while
  // other threads read and overwrite.
  service::ResultCache cache(/*capacity=*/32, /*warm_capacity=*/8);
  constexpr std::uint64_t kKeySpace = 128;

  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      for (std::uint64_t i = 0; i < 3000; ++i) {
        const std::uint64_t key = (t * 31 + i * 7) % kKeySpace;
        if (i % 3 == 0) {
          cache.put(key, make_result(/*sweeps=*/key + 1));
        } else if (auto hit = cache.get(key)) {
          // A hit must hand back a live, completed result even while
          // eviction churns the LRU list under it.
          EXPECT_EQ(hit->status, core::Status::kCompleted);
        }
        if (i % 5 == 0) {
          ising::Bits bits(8, static_cast<std::uint8_t>(t & 1));
          cache.put_warm(key % 16, bits, static_cast<double>(i % 11));
        }
        if (i % 7 == 0) {
          (void)cache.warm_samples(key % 16);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_LE(cache.warm_pool_size(), 8u);
  const auto stats = cache.stats();
  // Conservation: entries present == entries ever inserted - evicted
  // (overwrites count as neither), and every lookup was a hit or a miss.
  EXPECT_EQ(stats.insertions - stats.evictions, cache.size());
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_GT(stats.warm_hits + stats.warm_misses, 0u);
}

// ---------------------------------------------------------- MetricsRegistry

TEST(ConcurrencyStress, MetricsRegistryConcurrentRegisterRecordScrape) {
  obs::MetricsRegistry registry;
  constexpr std::uint64_t kAddsPerThread = 5000;
  std::atomic<bool> stop_scraping{false};

  // All threads get-or-create the SAME metrics concurrently — the handles
  // they get back must alias one underlying object.
  std::vector<std::thread> recorders;
  for (std::size_t t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&registry, t] {
      obs::Counter& hits = registry.counter("stress_hits");
      obs::Histogram& lat = registry.histogram("stress_latency_ms");
      obs::Gauge& depth = registry.gauge("stress_depth");
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) {
        hits.add(1);
        lat.observe(static_cast<double>((i % 50) + 1));
        depth.set(static_cast<double>(t));
        if (i % 64 == 0) {
          // Late registration under load: a distinct name per thread.
          registry.counter("stress_thread_" + std::to_string(t)).add(1);
        }
      }
    });
  }

  // Scrape concurrently with registration and recording: the exposition
  // must always be well-formed (non-empty, every header paired).
  std::thread scraper([&] {
    while (!stop_scraping.load(std::memory_order_relaxed)) {
      const std::string payload = registry.render_prometheus();
      EXPECT_NE(payload.find("# TYPE"), std::string::npos);
      (void)registry.names();
      (void)registry.histogram_snapshot("stress_latency_ms");
      std::this_thread::yield();
    }
  });

  for (auto& r : recorders) r.join();
  stop_scraping.store(true, std::memory_order_relaxed);
  scraper.join();

  EXPECT_EQ(registry.counter("stress_hits").value(),
            kThreads * kAddsPerThread);
  const auto snap = registry.histogram_snapshot("stress_latency_ms");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->count, kThreads * kAddsPerThread);
  // kThreads distinct late-registered counters + the three shared ones.
  EXPECT_EQ(registry.names().size(), kThreads + 3);
}

}  // namespace
}  // namespace saim
