// Tests for net::EventLoop (the epoll/poll reactor): fd readiness
// dispatch, interest updates, removal from inside a callback, one-shot
// timers with cancellation and re-arm, and the cross-thread wakeup.
// Every case runs on both backends — epoll (Linux default) and the
// portable poll fallback (force_poll) — so the fallback cannot rot.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"

namespace saim {
namespace {

using namespace saim::net;

class EventLoopTest : public ::testing::TestWithParam<bool> {
 protected:
  EventLoop& loop() {
    if (!loop_) loop_ = std::make_unique<EventLoop>(GetParam());
    return *loop_;
  }

 private:
  std::unique_ptr<EventLoop> loop_;
};

/// A connected socketpair the tests poke readiness through.
struct SockPair {
  int a = -1;
  int b = -1;
  SockPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SockPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST_P(EventLoopTest, BackendMatchesRequest) {
#if defined(__linux__)
  EXPECT_EQ(loop().using_epoll(), !GetParam());
#else
  EXPECT_FALSE(loop().using_epoll());
#endif
}

TEST_P(EventLoopTest, ReadReadinessDispatchesOnlyWhenDataArrives) {
  SockPair pair;
  int reads = 0;
  loop().add_fd(pair.a, EventLoop::kRead, [&](std::uint32_t ready) {
    EXPECT_TRUE(ready & EventLoop::kRead);
    ++reads;
    char buf[16];
    (void)::read(pair.a, buf, sizeof buf);
  });
  EXPECT_EQ(loop().fd_count(), 1u);

  loop().run_once(0);
  EXPECT_EQ(reads, 0) << "no data, no dispatch";

  ASSERT_EQ(::write(pair.b, "x", 1), 1);
  loop().run_once(100);
  EXPECT_EQ(reads, 1);
  loop().run_once(0);
  EXPECT_EQ(reads, 1) << "drained fd must not re-fire";
}

TEST_P(EventLoopTest, WriteInterestFiresAndCanBeDropped) {
  SockPair pair;
  int writables = 0;
  loop().add_fd(pair.a, EventLoop::kWrite,
                [&](std::uint32_t) { ++writables; });
  loop().run_once(100);
  EXPECT_EQ(writables, 1) << "an idle socket is writable";

  // Interest 0 parks the fd: registered but silent.
  loop().set_interest(pair.a, 0);
  loop().run_once(0);
  EXPECT_EQ(writables, 1);
  EXPECT_EQ(loop().fd_count(), 1u);

  loop().set_interest(pair.a, EventLoop::kWrite);
  loop().run_once(100);
  EXPECT_EQ(writables, 2);
}

TEST_P(EventLoopTest, PeerCloseReportsToParkedReaders) {
  // A connection under backpressure has read interest OFF; the loop
  // must still deliver the peer-vanished event (kError|kRead via
  // HUP/ERR) or a parked client would leak forever.
  SockPair pair;
  std::uint32_t seen = 0;
  loop().add_fd(pair.a, 0, [&](std::uint32_t ready) { seen |= ready; });
  loop().run_once(0);
  EXPECT_EQ(seen, 0u);

  ::close(pair.b);
  pair.b = -1;
  loop().run_once(100);
  EXPECT_TRUE(seen & EventLoop::kRead) << "HUP must reach interest-0 fds";
}

TEST_P(EventLoopTest, RemoveInsideCallbackIsSafe) {
  SockPair first;
  SockPair second;
  int fired = 0;
  // Both fds ready in one pass; the first callback removes the second.
  // Dispatch must not call into the removed entry.
  const auto make = [&](int self, int other) {
    loop().add_fd(self, EventLoop::kRead, [&, self, other](std::uint32_t) {
      ++fired;
      char buf[4];
      (void)::read(self, buf, sizeof buf);
      if (loop().fd_count() == 2) loop().remove_fd(other);
    });
  };
  make(first.a, second.a);
  make(second.a, first.a);
  ASSERT_EQ(::write(first.b, "x", 1), 1);
  ASSERT_EQ(::write(second.b, "x", 1), 1);
  loop().run_once(100);
  loop().run_once(0);
  EXPECT_EQ(fired, 1) << "the removed fd's callback must not run";
  EXPECT_EQ(loop().fd_count(), 1u);
}

TEST_P(EventLoopTest, TimersFireOnceInDeadlineOrder) {
  std::vector<int> order;
  loop().add_timer(std::chrono::milliseconds(30),
                   [&] { order.push_back(30); });
  loop().add_timer(std::chrono::milliseconds(5),
                   [&] { order.push_back(5); });
  EXPECT_EQ(loop().pending_timers(), 2u);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (loop().pending_timers() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    loop().run_once(50);
  }
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 5);
  EXPECT_EQ(order[1], 30);
  loop().run_once(10);
  EXPECT_EQ(order.size(), 2u) << "one-shot timers must not re-fire";
}

TEST_P(EventLoopTest, CancelledTimerNeverFires) {
  bool fired = false;
  const std::uint64_t id =
      loop().add_timer(std::chrono::milliseconds(5), [&] { fired = true; });
  EXPECT_TRUE(loop().cancel_timer(id));
  EXPECT_FALSE(loop().cancel_timer(id)) << "second cancel is a no-op";
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  loop().run_once(20);
  EXPECT_FALSE(fired);
  EXPECT_EQ(loop().pending_timers(), 0u);
}

TEST_P(EventLoopTest, TimerCallbackMayReArm) {
  int fires = 0;
  std::function<void()> tick = [&] {
    if (++fires < 3) {
      loop().add_timer(std::chrono::milliseconds(1), tick);
    }
  };
  loop().add_timer(std::chrono::milliseconds(1), tick);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fires < 3 && std::chrono::steady_clock::now() < deadline) {
    loop().run_once(20);
  }
  EXPECT_EQ(fires, 3);
}

TEST_P(EventLoopTest, WakeupUnblocksRunFromAnotherThread) {
  EventLoop& l = loop();
  std::thread stopper([&l] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    l.stop();     // run() checks stop_ between passes...
    l.wakeup();   // ...and wakeup() ends the blocking wait now
  });
  const auto start = std::chrono::steady_clock::now();
  l.run();  // would park ~1 s per pass without the wakeup
  const auto elapsed = std::chrono::steady_clock::now() - start;
  stopper.join();
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            900)
      << "wakeup() must end the wait early";
}

INSTANTIATE_TEST_SUITE_P(Backends, EventLoopTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "poll" : "epoll";
                         });

}  // namespace
}  // namespace saim
