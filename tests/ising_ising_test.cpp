#include "ising/ising_model.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace saim::ising {
namespace {

TEST(IsingModel, TwoSpinFerromagnet) {
  // H = -J m0 m1 with J=1: aligned states have energy -1.
  IsingModel ising(2);
  ising.add_coupling(0, 1, 1.0);
  EXPECT_DOUBLE_EQ(ising.energy(Spins{1, 1}), -1.0);
  EXPECT_DOUBLE_EQ(ising.energy(Spins{-1, -1}), -1.0);
  EXPECT_DOUBLE_EQ(ising.energy(Spins{1, -1}), 1.0);
}

TEST(IsingModel, FieldTerm) {
  IsingModel ising(1);
  ising.add_field(0, 2.0);
  EXPECT_DOUBLE_EQ(ising.energy(Spins{1}), -2.0);
  EXPECT_DOUBLE_EQ(ising.energy(Spins{-1}), 2.0);
}

TEST(IsingModel, OffsetShiftsEnergy) {
  IsingModel ising(1);
  ising.add_offset(3.0);
  EXPECT_DOUBLE_EQ(ising.energy(Spins{1}), 3.0);
}

TEST(IsingModel, DiagonalCouplingIsConstant) {
  // m_i^2 == 1, so -J_ii m_i m_i = -J_ii for every state.
  IsingModel ising(2);
  ising.add_coupling(0, 0, 2.0);
  EXPECT_DOUBLE_EQ(ising.energy(Spins{1, 1}), -2.0);
  EXPECT_DOUBLE_EQ(ising.energy(Spins{-1, 1}), -2.0);
}

TEST(IsingModel, CouplingSymmetricAccumulation) {
  IsingModel ising(3);
  ising.add_coupling(0, 2, 1.0);
  ising.add_coupling(2, 0, 0.5);
  EXPECT_DOUBLE_EQ(ising.coupling(0, 2), 1.5);
  EXPECT_DOUBLE_EQ(ising.coupling(2, 0), 1.5);
}

TEST(IsingModel, InputMatchesEquationNine) {
  // I_i = sum_j J_ij m_j + h_i.
  IsingModel ising(3);
  ising.add_coupling(0, 1, 2.0);
  ising.add_coupling(0, 2, -1.0);
  ising.add_field(0, 0.5);
  const Spins m = {1, 1, -1};
  EXPECT_DOUBLE_EQ(ising.input(m, 0), 2.0 * 1 + (-1.0) * (-1) + 0.5);
}

TEST(IsingModel, SetFieldOverwrites) {
  IsingModel ising(2);
  ising.add_field(0, 1.0);
  ising.set_field(0, -4.0);
  EXPECT_DOUBLE_EQ(ising.field(0), -4.0);
}

TEST(IsingModel, OutOfRangeThrows) {
  IsingModel ising(2);
  EXPECT_THROW(ising.add_coupling(0, 2, 1.0), std::out_of_range);
  EXPECT_THROW(ising.add_field(5, 1.0), std::out_of_range);
  EXPECT_THROW((void)ising.field(2), std::out_of_range);
  EXPECT_THROW((void)ising.coupling(0, 3), std::out_of_range);
}

TEST(IsingModel, NnzCountsUpperTriangle) {
  IsingModel ising(4);
  ising.add_coupling(0, 1, 1.0);
  ising.add_coupling(1, 3, 1.0);
  EXPECT_EQ(ising.nnz(), 2u);
}

// Property sweep: dH of a flip equals 2 m_i I_i and matches recomputation.
class IsingFlipDelta : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IsingFlipDelta, MatchesFullRecomputation) {
  util::Xoshiro256pp rng(GetParam());
  const std::size_t n = 2 + rng.below(14);
  IsingModel ising(n);
  for (std::size_t i = 0; i < n; ++i) {
    ising.add_field(i, rng.uniform_sym() * 3.0);
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(0.5)) {
        ising.add_coupling(i, j, rng.uniform_sym() * 3.0);
      }
    }
  }
  Spins m(n);
  for (auto& s : m) s = rng.bernoulli(0.5) ? 1 : -1;

  for (std::size_t i = 0; i < n; ++i) {
    const double base = ising.energy(m);
    const double predicted = ising.flip_delta(m, i);
    Spins w = m;
    w[i] = static_cast<std::int8_t>(-w[i]);
    EXPECT_NEAR(ising.energy(w) - base, predicted, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomModels, IsingFlipDelta,
                         ::testing::Range<std::uint64_t>(100, 120));

}  // namespace
}  // namespace saim::ising
