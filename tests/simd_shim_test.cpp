// Semantics of the portable SIMD shim and the conservative acceptance
// bounds, on whichever backend (AVX2 / NEON / scalar emulation) this build
// compiled in. The shim's contract is per-lane scalar-identical arithmetic,
// so every check compares against plain double expressions; the bounds'
// contract is containment of the libm result, verified by a randomized
// scan over the argument ranges the sweep engines produce.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/accept_bounds.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace saim {
namespace {

using util::F64x4;
using util::U64x4;

void expect_lanes(F64x4 got, const double (&want)[4]) {
  double g[4];
  got.store(g);
  for (int l = 0; l < 4; ++l) {
    // Bitwise comparison: ±0.0 and NaN patterns matter to the engines.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(g[l]),
              std::bit_cast<std::uint64_t>(want[l]))
        << "lane " << l;
  }
}

TEST(SimdShim, ArithmeticMatchesScalarPerLane) {
  util::Xoshiro256pp rng(1);
  for (int it = 0; it < 2000; ++it) {
    double a[4], b[4];
    for (int l = 0; l < 4; ++l) {
      a[l] = 100.0 * rng.uniform_sym();
      b[l] = 100.0 * rng.uniform_sym();
    }
    const F64x4 va = F64x4::load(a);
    const F64x4 vb = F64x4::load(b);
    const double sum[4] = {a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]};
    const double dif[4] = {a[0] - b[0], a[1] - b[1], a[2] - b[2], a[3] - b[3]};
    const double mul[4] = {a[0] * b[0], a[1] * b[1], a[2] * b[2], a[3] * b[3]};
    const double div[4] = {a[0] / b[0], a[1] / b[1], a[2] / b[2], a[3] / b[3]};
    const double flr[4] = {std::floor(a[0]), std::floor(a[1]),
                           std::floor(a[2]), std::floor(a[3])};
    expect_lanes(va + vb, sum);
    expect_lanes(va - vb, dif);
    expect_lanes(va * vb, mul);
    expect_lanes(va / vb, div);
    expect_lanes(util::floor4(va), flr);
  }
}

TEST(SimdShim, ComparisonsSelectAndMovemask) {
  const F64x4 a = F64x4::set(1.0, -2.0, 3.0, -0.0);
  const F64x4 b = F64x4::set(1.0, 0.0, 2.0, 0.0);
  // -0.0 compares equal to +0.0 in IEEE; lt is false, le/ge true.
  EXPECT_EQ(util::movemask(util::cmp_lt(a, b)), 0b0010);
  EXPECT_EQ(util::movemask(util::cmp_le(a, b)), 0b1011);
  EXPECT_EQ(util::movemask(util::cmp_ge(a, b)), 0b1101);

  const F64x4 mask = util::cmp_lt(a, b);
  const double sel[4] = {-1.0, 7.0, -3.0, -4.0};
  expect_lanes(util::select(mask, F64x4::broadcast(7.0),
                            F64x4::set(-1.0, -2.0, -3.0, -4.0)),
               sel);
}

TEST(SimdShim, MaskAlgebraIsBitwise) {
  const F64x4 t = F64x4::broadcast(std::bit_cast<double>(~std::uint64_t{0}));
  const F64x4 f = F64x4::zero();
  EXPECT_EQ(util::movemask(util::mask_and(t, f)), 0);
  EXPECT_EQ(util::movemask(util::mask_or(t, f)), 0b1111);
  EXPECT_EQ(util::movemask(util::mask_andnot(t, t)), 0);
  EXPECT_EQ(util::movemask(util::mask_andnot(f, t)), 0b1111);
  EXPECT_EQ(util::movemask(util::mask_xor(t, f)), 0b1111);
  EXPECT_EQ(util::movemask(util::mask_xor(t, t)), 0);
  // Sign-flip via xor with -0.0 — the engines' exact negation idiom.
  const double neg[4] = {-1.5, 2.5, -0.0, 0.0};
  expect_lanes(util::mask_xor(F64x4::set(1.5, -2.5, 0.0, -0.0),
                              F64x4::broadcast(-0.0)),
               neg);
}

TEST(SimdShim, IntegerOpsMatchScalarPerLane) {
  util::Xoshiro256pp rng(2);
  for (int it = 0; it < 2000; ++it) {
    std::uint64_t a[4], b[4];
    for (int l = 0; l < 4; ++l) {
      a[l] = rng();
      b[l] = rng();
    }
    const U64x4 va = U64x4::load(a);
    const U64x4 vb = U64x4::load(b);
    std::uint64_t got[4];
    (va ^ vb).store(got);
    for (int l = 0; l < 4; ++l) EXPECT_EQ(got[l], a[l] ^ b[l]);
    (va & vb).store(got);
    for (int l = 0; l < 4; ++l) EXPECT_EQ(got[l], a[l] & b[l]);
    (va | vb).store(got);
    for (int l = 0; l < 4; ++l) EXPECT_EQ(got[l], a[l] | b[l]);
    (va + vb).store(got);
    for (int l = 0; l < 4; ++l) EXPECT_EQ(got[l], a[l] + b[l]);
    util::shl<17>(va).store(got);
    for (int l = 0; l < 4; ++l) EXPECT_EQ(got[l], a[l] << 17);
    util::shr<11>(va).store(got);
    for (int l = 0; l < 4; ++l) EXPECT_EQ(got[l], a[l] >> 11);
    util::rotl4<23>(va).store(got);
    for (int l = 0; l < 4; ++l) {
      EXPECT_EQ(got[l], (a[l] << 23) | (a[l] >> 41));
    }
  }
}

TEST(SimdShim, XoshiroSoAStepMatchesScalarStreams) {
  // 4 scalar generators vs one SoA step, several steps deep.
  util::Xoshiro256pp scalar[4] = {
      util::Xoshiro256pp(util::derive_seed(9, 0)),
      util::Xoshiro256pp(util::derive_seed(9, 1)),
      util::Xoshiro256pp(util::derive_seed(9, 2)),
      util::Xoshiro256pp(util::derive_seed(9, 3))};
  std::uint64_t s[4][4];
  for (int l = 0; l < 4; ++l) {
    const auto st = scalar[l].state();
    for (int j = 0; j < 4; ++j) s[j][l] = st[j];
  }
  U64x4 s0 = U64x4::load(s[0]), s1 = U64x4::load(s[1]),
        s2 = U64x4::load(s[2]), s3 = U64x4::load(s[3]);
  for (int step = 0; step < 100; ++step) {
    const U64x4 bits = util::xoshiro4_next(s0, s1, s2, s3);
    std::uint64_t got[4];
    bits.store(got);
    for (int l = 0; l < 4; ++l) EXPECT_EQ(got[l], scalar[l]());
  }
  // Masked step: only lanes 1 and 3 advance.
  const U64x4 mask = U64x4::set(0, ~std::uint64_t{0}, 0, ~std::uint64_t{0});
  const U64x4 bits = util::xoshiro4_next_masked(mask, s0, s1, s2, s3);
  std::uint64_t got[4];
  bits.store(got);
  EXPECT_EQ(got[1], scalar[1]());
  EXPECT_EQ(got[3], scalar[3]());
  // Unmasked lanes kept their state: the NEXT full step matches a scalar
  // stream that never advanced for lanes 0/2 and advanced once for 1/3.
  const U64x4 bits2 = util::xoshiro4_next(s0, s1, s2, s3);
  bits2.store(got);
  for (int l = 0; l < 4; ++l) EXPECT_EQ(got[l], scalar[l]());
}

TEST(SimdShim, ExactU64ToF64Conversion) {
  util::Xoshiro256pp rng(3);
  for (int it = 0; it < 20000; ++it) {
    std::uint64_t x[4];
    for (int l = 0; l < 4; ++l) x[l] = rng() >> 11;  // < 2^53
    double got[4];
    util::u64_to_f64_exact53(U64x4::load(x)).store(got);
    for (int l = 0; l < 4; ++l) {
      EXPECT_EQ(got[l], static_cast<double>(x[l]));
    }
  }
  // Edges.
  double got[4];
  util::u64_to_f64_exact53(
      U64x4::set(0, 1, (std::uint64_t{1} << 53) - 1, 0x123456789abULL))
      .store(got);
  EXPECT_EQ(got[0], 0.0);
  EXPECT_EQ(got[1], 1.0);
  EXPECT_EQ(got[2], static_cast<double>((std::uint64_t{1} << 53) - 1));
  EXPECT_EQ(got[3], static_cast<double>(0x123456789abULL));
}

// The engines' correctness rests on containment: lo <= libm <= hi. Scan
// the argument ranges the sweeps produce — Metropolis args are -beta*dH
// (mostly in [-50, 0], occasionally large-negative), pbit args beta*I over
// a broad range — plus magnitude sweeps across the saturation cutoffs.
TEST(AcceptBounds, ExpBoundsContainLibmEverywhere) {
  util::Xoshiro256pp rng(4);
  auto check = [](double a) {
    const util::BoundsF64x4 b = util::exp_bounds(F64x4::broadcast(a));
    double lo[4], hi[4];
    b.lo.store(lo);
    b.hi.store(hi);
    const double e = std::exp(a);
    EXPECT_LE(lo[0], e) << "arg " << a;
    EXPECT_GE(hi[0], e) << "arg " << a;
    EXPECT_LE(lo[0], hi[0]) << "arg " << a;
  };
  for (int it = 0; it < 500000; ++it) {
    check(-60.0 * rng.uniform01());           // Metropolis band
    check(20.0 * rng.uniform_sym());          // pbit band (via tanh)
    check(2000.0 * rng.uniform_sym());        // saturation crossings
  }
  check(0.0);
  check(-0.0);
  check(-700.0);  // below double underflow of exp? (~ -745) still fine
  check(-746.0);  // true exp underflows to 0
  check(710.0);   // libm overflows to inf
  check(-std::numeric_limits<double>::infinity());
}

TEST(AcceptBounds, TanhBoundsContainLibmEverywhere) {
  util::Xoshiro256pp rng(5);
  auto check = [](double x) {
    const util::BoundsF64x4 b = util::tanh_bounds(F64x4::broadcast(x));
    double lo[4], hi[4];
    b.lo.store(lo);
    b.hi.store(hi);
    const double t = std::tanh(x);
    EXPECT_LE(lo[0], t) << "arg " << x;
    EXPECT_GE(hi[0], t) << "arg " << x;
    // The pads may push the interval a hair past ±1 — conservative and
    // harmless for sign decisions — but never by more than the pad.
    EXPECT_GE(lo[0], -1.0 - 1e-9) << "arg " << x;
    EXPECT_LE(hi[0], 1.0 + 1e-9) << "arg " << x;
  };
  for (int it = 0; it < 500000; ++it) {
    check(5.0 * rng.uniform_sym());    // typical beta*I
    check(40.0 * rng.uniform_sym());   // saturation crossings
    check(0.01 * rng.uniform_sym());   // near zero: bounds must straddle 0
  }
  check(0.0);
  check(-0.0);
  check(20.0);
  check(-20.0);
  check(1e300);
  check(-1e300);
}

// The ambiguous band (bounds fail to decide) must be rare, or the scalar
// fallback erases the speedup. Measure it on the Metropolis band.
TEST(AcceptBounds, AmbiguousBandIsNarrow) {
  util::Xoshiro256pp rng(6);
  int ambiguous = 0;
  const int trials = 200000;
  for (int it = 0; it < trials; ++it) {
    const double a = -8.0 * rng.uniform01();  // exp(a) in [3e-4, 1]
    const double u = rng.uniform01();
    const util::BoundsF64x4 b = util::exp_bounds(F64x4::broadcast(a));
    double lo[4], hi[4];
    b.lo.store(lo);
    b.hi.store(hi);
    if (!(u < lo[0]) && !(u >= hi[0])) ++ambiguous;
  }
  // Interval width is ~4e-5 relative; on uniform u the hit rate is well
  // under 0.1%. Allow 10x slack for distributional effects.
  EXPECT_LT(ambiguous, trials / 100);
}

}  // namespace
}  // namespace saim
