// Deterministic parallel replicas: run_batch must be bit-reproducible
// regardless of thread count. The in-repo engine backends implement the
// contract "replica r is run on a fresh Xoshiro256pp(derive_seed(base, r))
// stream, where base is one draw from the caller's rng" — which makes each
// replica independent of scheduling by construction. These tests pin down
// (a) that contract, (b) reproducibility across calls, and (c) the
// thread-count invariance of util::parallel_for and multi_start.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "anneal/backend.hpp"
#include "anneal/exact_backend.hpp"
#include "anneal/parallel_tempering.hpp"
#include "anneal/simulated_annealing.hpp"
#include "anneal/sqa.hpp"
#include "anneal/tabu.hpp"
#include "core/multi_start.hpp"
#include "core/penalty_method.hpp"
#include "ising/ising_model.hpp"
#include "problems/qkp.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace saim {
namespace {

ising::IsingModel small_model(std::size_t n, std::uint64_t seed) {
  ising::IsingModel model(n);
  util::Xoshiro256pp rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform01() < 0.4) model.add_coupling(i, j, rng.uniform_sym());
    }
    model.add_field(i, rng.uniform_sym());
  }
  return model;
}

void expect_same_results(const std::vector<anneal::RunResult>& a,
                         const std::vector<anneal::RunResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].last, b[i].last) << "replica " << i;
    EXPECT_EQ(a[i].last_energy, b[i].last_energy) << "replica " << i;
    EXPECT_EQ(a[i].best, b[i].best) << "replica " << i;
    EXPECT_EQ(a[i].best_energy, b[i].best_energy) << "replica " << i;
    EXPECT_EQ(a[i].sweeps, b[i].sweeps) << "replica " << i;
  }
}

std::vector<std::unique_ptr<anneal::IsingSolverBackend>> engine_backends() {
  std::vector<std::unique_ptr<anneal::IsingSolverBackend>> backends;
  backends.push_back(std::make_unique<anneal::PBitBackend>(
      pbit::Schedule::linear(5.0), 60));
  backends.push_back(std::make_unique<anneal::MetropolisSaBackend>(
      pbit::Schedule::linear(5.0), 60));
  anneal::PtOptions pt;
  pt.replicas = 4;
  pt.sweeps = 40;
  backends.push_back(std::make_unique<anneal::ParallelTemperingBackend>(pt));
  anneal::SqaOptions sqa;
  sqa.trotter_slices = 4;
  sqa.sweeps = 40;
  backends.push_back(std::make_unique<anneal::SqaBackend>(sqa));
  anneal::TabuOptions tabu;
  tabu.steps = 200;
  backends.push_back(std::make_unique<anneal::TabuBackend>(tabu));
  return backends;
}

TEST(RunBatch, ReproducibleAcrossCallsForAllEngineBackends) {
  const auto model = small_model(20, 3);
  for (auto& backend : engine_backends()) {
    backend->bind(model);
    util::Xoshiro256pp rng_a(77);
    util::Xoshiro256pp rng_b(77);
    const auto batch_a = backend->run_batch(rng_a, 5);
    const auto batch_b = backend->run_batch(rng_b, 5);
    SCOPED_TRACE(backend->name());
    expect_same_results(batch_a, batch_b);
  }
}

TEST(RunBatch, ReplicaStreamsFollowTheDerivedSeedContract) {
  // run_batch(rng, R)[r] must equal a run() on a fresh backend fed the
  // stream Xoshiro256pp(derive_seed(base, r)) — so replica r depends only
  // on (base, r), never on sibling replicas or thread scheduling.
  const auto model = small_model(20, 5);
  auto backends = engine_backends();
  auto reference_backends = engine_backends();
  for (std::size_t b = 0; b < backends.size(); ++b) {
    backends[b]->bind(model);
    reference_backends[b]->bind(model);
    SCOPED_TRACE(backends[b]->name());

    util::Xoshiro256pp rng(123);
    const auto batch = backends[b]->run_batch(rng, 4);

    util::Xoshiro256pp seeder(123);
    const std::uint64_t base = seeder();
    std::vector<anneal::RunResult> manual;
    for (std::size_t r = 0; r < 4; ++r) {
      util::Xoshiro256pp replica_rng(util::derive_seed(base, r));
      manual.push_back(reference_backends[b]->run(replica_rng));
    }
    expect_same_results(batch, manual);
  }
}

TEST(RunBatch, BatchThreadCapDoesNotChangeResults) {
  // Replica r depends only on (base draw, r), so forcing the pool to one
  // thread vs several must yield bit-identical batches.
  const auto model = small_model(20, 9);
  auto sequential = engine_backends();
  auto pooled = engine_backends();
  for (std::size_t b = 0; b < sequential.size(); ++b) {
    sequential[b]->bind(model);
    pooled[b]->bind(model);
    sequential[b]->set_batch_threads(1);
    pooled[b]->set_batch_threads(4);
    SCOPED_TRACE(sequential[b]->name());

    util::Xoshiro256pp rng_a(31);
    util::Xoshiro256pp rng_b(31);
    expect_same_results(sequential[b]->run_batch(rng_a, 5),
                        pooled[b]->run_batch(rng_b, 5));
  }
}

TEST(RunBatch, DefaultImplementationLoopsRun) {
  // The exact backend keeps the base-class batch: deterministic repeats of
  // the (deterministic) ground-state solve.
  const auto model = small_model(10, 7);
  anneal::ExactBackend exact;
  exact.bind(model);
  util::Xoshiro256pp rng(1);
  const auto batch = exact.run_batch(rng, 3);
  ASSERT_EQ(batch.size(), 3u);
  for (const auto& r : batch) {
    EXPECT_EQ(r.best, batch[0].best);
    EXPECT_EQ(r.best_energy, batch[0].best_energy);
  }
}

// ----------------------------------------------------------- parallel_for

TEST(ParallelFor, CoversEveryIndexExactlyOnceAtAnyThreadCount) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{7}, std::size_t{0}}) {
    std::vector<std::atomic<int>> hits(101);
    util::parallel_for(
        hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, threads);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      util::parallel_for(
          8,
          [](std::size_t i) {
            if (i == 3) throw std::runtime_error("boom");
          },
          2),
      std::runtime_error);
}

TEST(ParallelFor, ZeroCountIsANoOp) {
  bool called = false;
  util::parallel_for(0, [&](std::size_t) { called = true; }, 4);
  EXPECT_FALSE(called);
}

// ------------------------------------------------------------- multi_start

TEST(MultiStart, ThreadCountDoesNotChangeResults) {
  const auto inst = problems::make_paper_qkp(12, 50, 9);
  const auto mapping = problems::qkp_to_problem(inst);
  core::SaimOptions opts;
  opts.iterations = 30;
  opts.eta = 20.0;

  auto run_with_threads = [&](std::size_t threads) {
    core::MultiStartOptions multi;
    multi.restarts = 4;
    multi.seed = 7;
    multi.threads = threads;
    return core::multi_start_saim(
        mapping.problem,
        [] {
          return std::make_unique<anneal::PBitBackend>(
              pbit::Schedule::linear(10.0), 100);
        },
        opts, multi, core::make_qkp_evaluator(inst));
  };

  const auto sequential = run_with_threads(1);
  const auto parallel = run_with_threads(4);
  const auto automatic = run_with_threads(0);

  EXPECT_EQ(sequential.best.best_cost, parallel.best.best_cost);
  EXPECT_EQ(sequential.best.best_x, parallel.best.best_x);
  EXPECT_EQ(sequential.best_restart, parallel.best_restart);
  EXPECT_EQ(sequential.feasible_restarts, parallel.feasible_restarts);
  EXPECT_EQ(sequential.total_sweeps, parallel.total_sweeps);
  EXPECT_EQ(sequential.best.best_cost, automatic.best.best_cost);
  EXPECT_EQ(sequential.best_restart, automatic.best_restart);
}

// ------------------------------------------------------ SAIM with replicas

TEST(SaimReplicas, BatchedSolveAccountsAllReplicaRuns) {
  const auto inst = problems::make_paper_qkp(12, 50, 4);
  const auto mapping = problems::qkp_to_problem(inst);

  anneal::PBitBackend backend(pbit::Schedule::linear(10.0), 100);
  core::SaimOptions opts;
  opts.iterations = 25;
  opts.eta = 20.0;
  opts.replicas = 3;
  core::SaimSolver solver(mapping.problem, backend, opts);
  const auto result = solver.solve(core::make_qkp_evaluator(inst));

  EXPECT_EQ(result.total_runs, 25u * 3u);
  EXPECT_EQ(result.total_sweeps, 25u * 3u * 100u);
  EXPECT_TRUE(result.found_feasible);
}

TEST(SaimReplicas, BatchedSolveIsReproducible) {
  const auto inst = problems::make_paper_qkp(12, 50, 4);
  const auto mapping = problems::qkp_to_problem(inst);

  auto solve_once = [&] {
    anneal::PBitBackend backend(pbit::Schedule::linear(10.0), 100);
    core::SaimOptions opts;
    opts.iterations = 25;
    opts.eta = 20.0;
    opts.replicas = 3;
    opts.seed = 11;
    core::SaimSolver solver(mapping.problem, backend, opts);
    return solver.solve(core::make_qkp_evaluator(inst));
  };

  const auto a = solve_once();
  const auto b = solve_once();
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.best_x, b.best_x);
  EXPECT_EQ(a.feasible_count, b.feasible_count);
}

}  // namespace
}  // namespace saim
