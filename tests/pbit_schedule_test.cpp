#include "pbit/schedule.hpp"

#include <gtest/gtest.h>

namespace saim::pbit {
namespace {

TEST(Schedule, LinearEndpoints) {
  const Schedule s = Schedule::linear(10.0);
  EXPECT_DOUBLE_EQ(s.beta(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(s.beta(99, 100), 10.0);
}

TEST(Schedule, LinearMidpoint) {
  const Schedule s = Schedule::linear(10.0);
  EXPECT_NEAR(s.beta(50, 101), 5.0, 1e-12);
}

TEST(Schedule, LinearWithNonzeroStart) {
  const Schedule s = Schedule::linear(8.0, 2.0);
  EXPECT_DOUBLE_EQ(s.beta(0, 4), 2.0);
  EXPECT_DOUBLE_EQ(s.beta(3, 4), 8.0);
}

TEST(Schedule, LinearIsMonotone) {
  const Schedule s = Schedule::linear(50.0);
  double prev = -1.0;
  for (std::size_t t = 0; t < 200; ++t) {
    const double b = s.beta(t, 200);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(Schedule, GeometricEndpoints) {
  const Schedule s = Schedule::geometric(0.1, 10.0);
  EXPECT_NEAR(s.beta(0, 50), 0.1, 1e-12);
  EXPECT_NEAR(s.beta(49, 50), 10.0, 1e-9);
}

TEST(Schedule, GeometricMidpointIsGeometricMean) {
  const Schedule s = Schedule::geometric(1.0, 100.0);
  EXPECT_NEAR(s.beta(50, 101), 10.0, 1e-9);
}

TEST(Schedule, ConstantIgnoresTime) {
  const Schedule s = Schedule::constant(3.0);
  EXPECT_DOUBLE_EQ(s.beta(0, 10), 3.0);
  EXPECT_DOUBLE_EQ(s.beta(9, 10), 3.0);
}

TEST(Schedule, SingleSweepYieldsFinalBeta) {
  EXPECT_DOUBLE_EQ(Schedule::linear(10.0).beta(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(Schedule::geometric(0.5, 4.0).beta(0, 1), 4.0);
}

TEST(Schedule, ClampsPastEnd) {
  const Schedule s = Schedule::linear(10.0);
  EXPECT_DOUBLE_EQ(s.beta(500, 100), 10.0);
}

TEST(Schedule, InvalidArgumentsThrow) {
  EXPECT_THROW(Schedule::linear(1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(Schedule::geometric(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Schedule::geometric(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Schedule::constant(-1.0), std::invalid_argument);
}

TEST(Schedule, KindAccessors) {
  EXPECT_EQ(Schedule::linear(1.0).kind(), Schedule::Kind::kLinear);
  EXPECT_EQ(Schedule::geometric(0.1, 1.0).kind(), Schedule::Kind::kGeometric);
  EXPECT_EQ(Schedule::constant(1.0).kind(), Schedule::Kind::kConstant);
  EXPECT_DOUBLE_EQ(Schedule::linear(7.0, 1.0).beta_start(), 1.0);
  EXPECT_DOUBLE_EQ(Schedule::linear(7.0, 1.0).beta_end(), 7.0);
}

}  // namespace
}  // namespace saim::pbit
