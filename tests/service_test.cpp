#include "service/solve_service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/penalty_method.hpp"
#include "problems/qkp.hpp"
#include "service/backend_factory.hpp"

namespace saim {
namespace {

using namespace std::chrono_literals;

struct TestProblem {
  std::shared_ptr<problems::QkpInstance> instance;
  std::shared_ptr<const problems::ConstrainedProblem> problem;
};

TestProblem make_test_problem(std::size_t n = 30, int index = 1) {
  TestProblem t;
  t.instance = std::make_shared<problems::QkpInstance>(
      problems::make_paper_qkp(n, 50, index));
  t.problem = std::make_shared<problems::ConstrainedProblem>(
      problems::qkp_to_problem(*t.instance).problem);
  return t;
}

service::SolveRequest make_request(const TestProblem& t,
                                   std::size_t iterations = 20,
                                   std::uint64_t seed = 1) {
  service::SolveRequest request;
  request.problem = t.problem;
  request.evaluator = [inst = t.instance,
                       ev = core::make_qkp_evaluator(*t.instance)](
                          std::span<const std::uint8_t> x) { return ev(x); };
  request.backend.sweeps = 100;
  request.options.iterations = iterations;
  request.options.seed = seed;
  return request;
}

TEST(SolveService, SolvesOneJobEndToEnd) {
  service::SolveService svc({.workers = 2, .cache_capacity = 8});
  const auto t = make_test_problem();
  auto handle = svc.submit(make_request(t));
  const auto response = handle.wait();
  ASSERT_NE(response, nullptr);
  EXPECT_EQ(response->status, core::Status::kCompleted);
  EXPECT_FALSE(response->cache_hit);
  EXPECT_EQ(response->result->total_runs, 20u);
  EXPECT_TRUE(response->result->found_feasible);
}

TEST(SolveService, MatchesDirectSolverBitForBit) {
  // The service must be a pure scheduling layer: same problem, options and
  // seed give exactly the blocking-call result.
  const auto t = make_test_problem();
  service::SolveService svc({.workers = 3});
  const auto via_service = svc.submit(make_request(t)).wait();
  ASSERT_EQ(via_service->status, core::Status::kCompleted);

  auto backend = service::make_backend(make_request(t).backend);
  core::SaimSolver solver(*t.problem, *backend, make_request(t).options);
  const auto direct = solver.solve(core::make_qkp_evaluator(*t.instance));

  EXPECT_EQ(via_service->result->best_cost, direct.best_cost);
  EXPECT_EQ(via_service->result->best_x, direct.best_x);
  EXPECT_EQ(via_service->result->feasible_count, direct.feasible_count);
  EXPECT_EQ(via_service->result->total_sweeps, direct.total_sweeps);
}

TEST(SolveService, CacheHitReturnsIdenticalResultWithoutRecompute) {
  service::SolveService svc({.workers = 2, .cache_capacity = 8});
  const auto t = make_test_problem();

  const auto first = svc.submit(make_request(t)).wait();
  ASSERT_EQ(first->status, core::Status::kCompleted);

  const auto second = svc.submit(make_request(t)).wait();
  EXPECT_TRUE(second->cache_hit);
  // Same SolveResult *object*: bit-identical by construction, provably no
  // recompute.
  EXPECT_EQ(second->result.get(), first->result.get());

  const auto stats = svc.stats();
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_GT(stats.cache.hit_rate(), 0.0);
}

TEST(SolveService, DifferentSeedsMissTheCache) {
  service::SolveService svc({.workers = 2, .cache_capacity = 8});
  const auto t = make_test_problem();
  const auto a = svc.submit(make_request(t, 20, 1)).wait();
  const auto b = svc.submit(make_request(t, 20, 2)).wait();
  EXPECT_FALSE(b->cache_hit);
  EXPECT_NE(a->fingerprint, b->fingerprint);
  EXPECT_EQ(svc.stats().executed, 2u);
}

TEST(SolveService, ContentKeyedCacheHitsAcrossRebuiltProblems) {
  // A twin problem object built independently from the same instance must
  // hit: the cache is keyed by content, not pointer.
  service::SolveService svc({.workers = 2, .cache_capacity = 8});
  const auto a = make_test_problem();
  const auto b = make_test_problem();
  ASSERT_NE(a.problem.get(), b.problem.get());
  const auto first = svc.submit(make_request(a)).wait();
  const auto second = svc.submit(make_request(b)).wait();
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->result.get(), first->result.get());
}

TEST(SolveService, CoalescesDuplicateInFlightRequests) {
  // One worker + a long job in front: twin submissions of the same request
  // sit in flight together and must collapse onto one computation.
  service::SolveService svc({.workers = 1, .cache_capacity = 8});
  const auto blocker = make_test_problem(30, 7);
  const auto t = make_test_problem();

  auto head = svc.submit(make_request(blocker, 200));
  auto first = svc.submit(make_request(t, 50));
  auto twin = svc.submit(make_request(t, 50));
  EXPECT_EQ(first.fingerprint(), twin.fingerprint());

  const auto r1 = first.wait();
  const auto r2 = twin.wait();
  EXPECT_EQ(r1.get(), r2.get());  // the same response object
  EXPECT_FALSE(r2->cache_hit);

  const auto stats = svc.stats();
  EXPECT_EQ(stats.coalesced, 1u);
  // 3 submissions, 2 actual solves.
  EXPECT_EQ(stats.executed, 2u);
  head.wait();
}

TEST(SolveService, CancelReturnsPartialResultWithCancelledStatus) {
  service::SolveService svc({.workers = 1});
  const auto t = make_test_problem();
  // Effectively endless job so the cancel lands mid-solve.
  auto handle = svc.submit(make_request(t, 1000000));
  std::this_thread::sleep_for(30ms);
  handle.cancel();
  const auto response = handle.wait();
  EXPECT_EQ(response->status, core::Status::kCancelled);
  EXPECT_LT(response->result->total_runs, 1000000u);
  EXPECT_EQ(svc.stats().cancelled, 1u);
}

TEST(SolveService, DeadlineReturnsPartialResultWithDeadlineStatus) {
  service::SolveService svc({.workers = 1});
  const auto t = make_test_problem();
  auto request = make_request(t, 1000000);
  request.timeout = 50ms;
  auto handle = svc.submit(std::move(request));
  const auto response = handle.wait();
  EXPECT_EQ(response->status, core::Status::kDeadline);
  EXPECT_LT(response->result->total_runs, 1000000u);
  EXPECT_EQ(svc.stats().deadline_expired, 1u);
}

TEST(SolveService, StoppedResultsAreNeverCached) {
  service::SolveService svc({.workers = 1, .cache_capacity = 8});
  const auto t = make_test_problem();
  auto request = make_request(t, 1000000);
  request.timeout = 30ms;
  svc.submit(std::move(request)).wait();

  // Identical request without the timeout: must be computed, not served
  // from a poisoned cache entry.
  auto full = make_request(t, 1000000);
  full.timeout = 30ms;
  const auto again = svc.submit(std::move(full)).wait();
  EXPECT_FALSE(again->cache_hit);
}

TEST(SolveService, CoalescedJobSurvivesOneHandleCancelling) {
  service::SolveService svc({.workers = 1});
  const auto blocker = make_test_problem(30, 7);
  const auto t = make_test_problem();
  auto head = svc.submit(make_request(blocker, 100));
  auto first = svc.submit(make_request(t, 60));
  auto twin = svc.submit(make_request(t, 60));

  // Only one of two subscribers cancels: the computation must complete for
  // the other.
  EXPECT_FALSE(first.cancel());
  const auto response = twin.wait();
  EXPECT_EQ(response->status, core::Status::kCompleted);
  EXPECT_EQ(response->result->total_runs, 60u);
  head.wait();
}

TEST(SolveService, DoesNotCoalesceOntoCancelledTwin) {
  // A twin whose sole subscriber already cancelled can only deliver a
  // partial result; a new identical request must compute fresh.
  service::SolveService svc({.workers = 1, .cache_capacity = 8});
  const auto blocker = make_test_problem(30, 7);
  const auto t = make_test_problem();
  auto head = svc.submit(make_request(blocker, 300));
  auto first = svc.submit(make_request(t, 40));
  EXPECT_TRUE(first.cancel());  // sole subscriber: the stop trips
  auto fresh = svc.submit(make_request(t, 40));
  const auto response = fresh.wait();
  EXPECT_EQ(response->status, core::Status::kCompleted);
  EXPECT_EQ(response->result->total_runs, 40u);
  head.wait();
  first.wait();
}

TEST(SolveService, DeadlinedTwinsDoNotCoalesce) {
  // Timeouts are not fingerprinted, so coalescing across them would hand
  // one caller the other's time budget; deadline-carrying requests run
  // independently instead.
  service::SolveService svc({.workers = 2, .cache_capacity = 0});
  const auto t = make_test_problem();
  auto a_req = make_request(t, 1000000);
  a_req.timeout = 40ms;
  auto b_req = make_request(t, 1000000);
  b_req.timeout = 40ms;
  auto a = svc.submit(std::move(a_req));
  auto b = svc.submit(std::move(b_req));
  EXPECT_EQ(a.wait()->status, core::Status::kDeadline);
  EXPECT_EQ(b.wait()->status, core::Status::kDeadline);
  EXPECT_EQ(svc.stats().coalesced, 0u);
  EXPECT_EQ(svc.stats().executed, 2u);
}

TEST(SolveService, DroppedTwinHandleDoesNotBlockCancel) {
  // A coalesced handle discarded without voting must leave the quorum,
  // or the remaining holder's cancel() could never trip the stop.
  service::SolveService svc({.workers = 1});
  const auto blocker = make_test_problem(30, 7);
  const auto t = make_test_problem();
  auto head = svc.submit(make_request(blocker, 300));
  auto first = svc.submit(make_request(t, 1000000));
  {
    auto twin = svc.submit(make_request(t, 1000000));
  }  // dropped without cancelling
  EXPECT_TRUE(first.cancel());  // quorum is 1-of-1 again
  EXPECT_EQ(first.wait()->status, core::Status::kCancelled);
  head.wait();
}

TEST(JobHandle, InvalidHandleIsInertEverywhere) {
  service::JobHandle handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_EQ(handle.wait(), nullptr);
  EXPECT_EQ(handle.wait_for(1ms), nullptr);
  EXPECT_EQ(handle.try_get(), nullptr);
  EXPECT_FALSE(handle.cancel());
  EXPECT_EQ(handle.fingerprint(), 0u);
}

TEST(SolveService, PriorityOrdersQueuedJobs) {
  service::SolveService svc({.workers = 1, .cache_capacity = 0});
  const auto t = make_test_problem();
  // Head job occupies the single worker while the queue builds up.
  auto head = svc.submit(make_request(t, 150, 99));

  std::vector<service::JobHandle> handles;
  auto low = make_request(t, 10, 1);
  low.priority = service::Priority::kLow;
  auto normal = make_request(t, 10, 2);
  auto high = make_request(t, 10, 3);
  high.priority = service::Priority::kHigh;
  handles.push_back(svc.submit(std::move(low)));
  handles.push_back(svc.submit(std::move(normal)));
  handles.push_back(svc.submit(std::move(high)));

  for (auto& h : handles) h.wait();
  head.wait();
  // All completed; ordering itself is covered by the JobQueue unit tests
  // (observing cross-thread completion order here would be flaky).
  for (auto& h : handles) {
    EXPECT_EQ(h.try_get()->status, core::Status::kCompleted);
  }
}

TEST(SolveService, ShutdownCancelsQueuedJobsAndUnblocksWaiters) {
  auto svc = std::make_unique<service::SolveService>(
      service::ServiceOptions{.workers = 1, .cache_capacity = 0});
  const auto t = make_test_problem();

  // One running job + several queued behind it. The running one is long
  // enough that the queued jobs are still queued when shutdown lands; the
  // sleep gives the (possibly not-yet-scheduled) worker time to dequeue it
  // so it is genuinely running, not still queued.
  auto running = svc->submit(make_request(t, 5000, 50));
  std::this_thread::sleep_for(50ms);
  std::vector<service::JobHandle> queued;
  for (int j = 0; j < 4; ++j) {
    queued.push_back(svc->submit(make_request(t, 50, 100 + j)));
  }

  svc->shutdown();

  // Queued-but-unstarted jobs fail fast as kCancelled...
  for (auto& h : queued) {
    const auto response = h.wait();
    EXPECT_EQ(response->status, core::Status::kCancelled);
    EXPECT_EQ(response->result->total_runs, 0u);
  }
  // ...while the running job finished cooperatively (completed: shutdown
  // does not cancel in-flight work, it only stops feeding it).
  const auto head = running.wait();
  EXPECT_EQ(head->status, core::Status::kCompleted);

  EXPECT_THROW(svc->submit(make_request(t)), std::runtime_error);
  svc.reset();  // double-shutdown via destructor must be safe
}

TEST(SolveService, UnknownBackendSurfacesAsError) {
  service::SolveService svc({.workers = 1});
  const auto t = make_test_problem();
  auto request = make_request(t);
  request.backend.name = "quantum-toaster";
  const auto response = svc.submit(std::move(request)).wait();
  EXPECT_EQ(response->status, core::Status::kError);
  EXPECT_NE(response->error.find("quantum-toaster"), std::string::npos);
  EXPECT_EQ(svc.stats().errors, 1u);
}

TEST(SolveService, NullProblemIsRejected) {
  service::SolveService svc({.workers = 1});
  EXPECT_THROW(svc.submit(service::SolveRequest{}), std::invalid_argument);
}

TEST(SolveService, RunsEveryKnownBackend) {
  service::SolveService svc({.workers = 2, .cache_capacity = 0});
  const auto t = make_test_problem(20);
  std::vector<service::JobHandle> handles;
  for (const auto& name : service::known_backends()) {
    auto request = make_request(t, 5);
    request.backend.name = name;
    request.backend.sweeps = 50;
    handles.push_back(svc.submit(std::move(request)));
  }
  for (auto& h : handles) {
    const auto response = h.wait();
    EXPECT_EQ(response->status, core::Status::kCompleted) << response->error;
  }
}

}  // namespace
}  // namespace saim
