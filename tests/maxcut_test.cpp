#include "problems/maxcut.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "pbit/pbit_machine.hpp"
#include "util/rng.hpp"

namespace saim::problems {
namespace {

TEST(Graph, ConstructionAndAccessors) {
  ising::Graph g(4);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.total_weight(), 5.0);
  EXPECT_DOUBLE_EQ(g.weighted_degree(1), 5.0);
  EXPECT_DOUBLE_EQ(g.weighted_degree(3), 0.0);
}

TEST(Graph, RejectsBadEdges) {
  ising::Graph g(3);
  EXPECT_THROW(g.add_edge(0, 3), std::out_of_range);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
  EXPECT_THROW((void)g.weighted_degree(5), std::out_of_range);
}

TEST(Graph, CutValueCountsCrossingEdges) {
  ising::Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 4.0);
  const std::vector<std::int8_t> side = {1, -1, 1};
  // Crossing: 0-1 and 1-2 -> 3.0.
  EXPECT_DOUBLE_EQ(g.cut_value(side), 3.0);
  EXPECT_THROW((void)g.cut_value(std::vector<std::int8_t>{1, 1}),
               std::invalid_argument);
}

TEST(Graph, SaveLoadRoundTrip) {
  ising::Graph g(4);
  g.add_edge(0, 3, 1.5);
  g.add_edge(2, 1, -0.5);
  std::stringstream ss;
  g.save(ss);
  const auto loaded = ising::Graph::load(ss);
  EXPECT_EQ(loaded.num_vertices(), 4u);
  ASSERT_EQ(loaded.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(loaded.edges()[0].weight, 1.5);
  EXPECT_EQ(loaded.edges()[1].u, 2u);
}

TEST(Graph, GnpRespectsDensityAndSeed) {
  const auto a = ising::random_gnp_graph(40, 0.3, 5);
  const auto b = ising::random_gnp_graph(40, 0.3, 5);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  const double expected = 0.3 * 40 * 39 / 2.0;
  EXPECT_NEAR(static_cast<double>(a.num_edges()), expected,
              0.35 * expected);
  EXPECT_THROW(ising::random_gnp_graph(10, 1.5, 1), std::invalid_argument);
}

TEST(Graph, TorusGridDegreeFour) {
  const auto g = ising::torus_grid_graph(4, 5);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.num_edges(), 40u);  // 2 edges per vertex on a torus
  for (std::size_t v = 0; v < 20; ++v) {
    EXPECT_DOUBLE_EQ(g.weighted_degree(v), 4.0);
  }
  EXPECT_THROW(ising::torus_grid_graph(1, 5), std::invalid_argument);
}

TEST(MaxCut, IsingEnergyEqualsNegativeCut) {
  // Exhaustive identity check H(m) == -cut(m) on a random weighted graph.
  const auto g = ising::random_gnp_graph(8, 0.5, 3, 0.5, 2.0);
  const auto model = maxcut_to_ising(g);
  std::vector<std::int8_t> side(8);
  for (std::uint64_t code = 0; code < 256; ++code) {
    for (std::size_t v = 0; v < 8; ++v) {
      side[v] = (code >> v) & 1ULL ? std::int8_t{1} : std::int8_t{-1};
    }
    ASSERT_NEAR(model.energy(side), -g.cut_value(side), 1e-9);
  }
}

TEST(MaxCut, GreedyAchievesHalfTotalWeight) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto g = ising::random_gnp_graph(30, 0.4, seed, 1.0, 3.0);
    const auto side = maxcut_greedy(g);
    EXPECT_GE(g.cut_value(side), g.total_weight() / 2.0 - 1e-9)
        << "seed=" << seed;
  }
}

TEST(MaxCut, LocalSearchReachesOneOptLocalOptimum) {
  const auto g = ising::random_gnp_graph(20, 0.4, 9);
  std::vector<std::int8_t> side(20, 1);
  const double cut = maxcut_local_search(g, side);
  EXPECT_DOUBLE_EQ(cut, g.cut_value(side));
  // 1-opt: no single move improves.
  for (std::size_t v = 0; v < 20; ++v) {
    auto moved = side;
    moved[v] = static_cast<std::int8_t>(-moved[v]);
    EXPECT_LE(g.cut_value(moved), cut + 1e-9);
  }
}

TEST(MaxCut, ExhaustiveOnCompleteBipartiteStructure) {
  // K4 with unit weights: max cut = 4 (2+2 split).
  ising::Graph g(4);
  for (std::size_t u = 0; u < 4; ++u) {
    for (std::size_t v = u + 1; v < 4; ++v) g.add_edge(u, v);
  }
  EXPECT_DOUBLE_EQ(maxcut_exhaustive(g), 4.0);
}

TEST(MaxCut, PBitMachineFindsOptimalCut) {
  // The paper's claim in miniature: annealing the max-cut Ising image
  // solves the problem. Verify against enumeration.
  const auto g = ising::random_gnp_graph(14, 0.5, 21);
  const double opt = maxcut_exhaustive(g);
  const auto model = maxcut_to_ising(g);
  pbit::PBitMachine machine(model);
  util::Xoshiro256pp rng(4);
  pbit::AnnealOptions opts;
  opts.sweeps = 500;
  opts.track_best = true;
  const auto result = machine.anneal(pbit::Schedule::linear(5.0), opts, rng);
  EXPECT_NEAR(-result.best_energy, opt, 1e-9);
}

// Property sweep: greedy <= local-search-from-greedy <= exhaustive.
class MaxCutBounds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxCutBounds, HeuristicChainIsMonotone) {
  const auto g = ising::random_gnp_graph(12, 0.5, GetParam(), 1.0, 4.0);
  const double opt = maxcut_exhaustive(g);
  auto side = maxcut_greedy(g);
  const double greedy_cut = g.cut_value(side);
  const double ls_cut = maxcut_local_search(g, side);
  EXPECT_LE(greedy_cut, ls_cut + 1e-9);
  EXPECT_LE(ls_cut, opt + 1e-9);
  EXPECT_GE(greedy_cut, g.total_weight() / 2.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, MaxCutBounds,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace saim::problems
