// Session-level observability tests (ISSUE 7): the {"cmd":"stats"}
// control line returning one service snapshot, the "trace":true per-job
// timing echo, and the service_stats JSON/Prometheus renderers over a
// live SolveService.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "service/service_stats.hpp"
#include "service/solve_service.hpp"
#include "service/stream_session.hpp"
#include "util/jsonl.hpp"

namespace saim::service {
namespace {

std::string job_line(const std::string& id, std::uint64_t seed,
                     bool trace = false) {
  return "{\"id\":\"" + id +
         "\",\"gen\":\"qkp:30-25-1\",\"iterations\":2,\"sweeps\":20,"
         "\"seed\":" + std::to_string(seed) +
         (trace ? ",\"trace\":true}" : "}");
}

/// Runs one whole session over string streams and returns output lines.
std::vector<std::string> run_session(SolveService& service,
                                     const std::string& input,
                                     bool stream = true) {
  std::istringstream in(input);
  std::ostringstream out;
  IostreamSessionIO io(in, out);
  SessionOptions options;
  options.stream = stream;
  run_stream_session(service, io, options);
  std::vector<std::string> lines;
  std::istringstream parse(out.str());
  std::string line;
  while (std::getline(parse, line)) lines.push_back(line);
  return lines;
}

const util::JsonValue* find_line_with(const std::vector<std::string>& lines,
                                      const std::string& field,
                                      util::JsonValue* storage) {
  for (const auto& line : lines) {
    *storage = util::parse_json(line);
    if (storage->find(field)) return storage;
  }
  return nullptr;
}

TEST(StreamSessionStats, StatsCmdReturnsOneServiceSnapshot) {
  ServiceOptions options;
  options.workers = 1;
  SolveService service(options);
  // stats answers immediately on read (it is a probe, not a barrier), so
  // run the jobs to completion in one session, then ask in a second one
  // over the same service.
  (void)run_session(service, job_line("a", 1) + "\n" + job_line("b", 2) +
                                 "\n");
  const auto lines =
      run_session(service, R"({"cmd":"stats","id":"s1"})" + std::string("\n"));

  util::JsonValue parsed;
  const auto* stats = find_line_with(lines, "service", &parsed);
  ASSERT_NE(stats, nullptr) << "no stats reply in the session output";
  EXPECT_EQ(stats->find("id")->as_string(), "s1");

  const auto* service_obj = stats->find("service");
  EXPECT_GE(service_obj->find("submitted")->as_int(), 2);
  EXPECT_GE(service_obj->find("completed")->as_int(), 2);
  EXPECT_NE(service_obj->find("workers"), nullptr);

  const auto* cache = service_obj->find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_NE(cache->find("hit_rate"), nullptr);
  EXPECT_NE(cache->find("warm_pool_size"), nullptr);

  // Per-stage latency quantiles, fed by the finished jobs above.
  const auto* latency = service_obj->find("latency");
  ASSERT_NE(latency, nullptr);
  for (const char* stage : {"queue_ms", "setup_ms", "solve_ms", "total_ms"}) {
    const auto* obj = latency->find(stage);
    ASSERT_NE(obj, nullptr) << stage;
    EXPECT_GE(obj->find("count")->as_int(), 2) << stage;
    EXPECT_GE(obj->find("p95_ms")->as_double(),
              obj->find("p50_ms")->as_double())
        << stage;
  }
}

TEST(StreamSessionStats, TraceEchoesATimingObjectOnlyWhenAsked) {
  ServiceOptions options;
  options.workers = 1;
  SolveService service(options);
  const auto lines = run_session(
      service, job_line("traced", 1, /*trace=*/true) + "\n" +
                   job_line("plain", 2) + "\n");

  bool saw_traced = false;
  bool saw_plain = false;
  for (const auto& line : lines) {
    const auto v = util::parse_json(line);
    if (!v.find("id")) continue;
    if (v.find("id")->as_string() == "traced") {
      saw_traced = true;
      const auto* timing = v.find("timing");
      ASSERT_NE(timing, nullptr) << line;
      const double queue = timing->find("queue_ms")->as_double();
      const double setup = timing->find("setup_ms")->as_double();
      const double solve = timing->find("solve_ms")->as_double();
      const double emit = timing->find("emit_ms")->as_double();
      const double total = timing->find("total_ms")->as_double();
      EXPECT_GE(queue, 0.0);
      EXPECT_GE(setup, 0.0);
      EXPECT_GT(solve, 0.0);
      EXPECT_GE(emit, 0.0);
      // Stages nest inside the submit->response total.
      EXPECT_LE(solve, total + 1e-6);
      EXPECT_LE(queue + setup + solve, total + 1.0);
      // "timing" must precede "seq": the shard router remaps seq by
      // rewriting the line's ,"seq":N} tail.
      EXPECT_LT(line.find("\"timing\""), line.find("\"seq\"")) << line;
    }
    if (v.find("id")->as_string() == "plain") {
      saw_plain = true;
      EXPECT_EQ(v.find("timing"), nullptr)
          << "untraced lines must stay byte-identical to PR 4 output";
    }
  }
  EXPECT_TRUE(saw_traced);
  EXPECT_TRUE(saw_plain);
}

TEST(StreamSessionStats, PrometheusRenderCoversServiceCountersAndLatency) {
  ServiceOptions options;
  options.workers = 1;
  SolveService service(options);
  (void)run_session(service, job_line("a", 1) + "\n");

  const std::string text = service_metrics_prometheus(service);
  EXPECT_NE(text.find("# TYPE saim_jobs_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("saim_jobs_submitted_total 1"), std::string::npos);
  EXPECT_NE(text.find("saim_jobs_completed_total 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE saim_workers gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE saim_job_total_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("saim_job_total_ms_count 1"), std::string::npos);
  EXPECT_NE(text.find("saim_emit_ms_count 1"), std::string::npos)
      << "the session must record its emit delay on the service registry";
}

}  // namespace
}  // namespace saim::service
