#include "anneal/sqa.hpp"

#include <gtest/gtest.h>

#include "core/penalty_method.hpp"
#include "core/saim_solver.hpp"
#include "exact/exhaustive.hpp"
#include "problems/qkp.hpp"

namespace saim::anneal {
namespace {

ising::IsingModel spin_glass(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  ising::IsingModel model(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      model.add_coupling(i, j, rng.bernoulli(0.5) ? 1.0 : -1.0);
    }
  }
  return model;
}

double exact_ground(const ising::IsingModel& model) {
  const std::size_t n = model.n();
  double best = 1e300;
  ising::Spins m(n);
  for (std::uint64_t code = 0; code < (1ULL << n); ++code) {
    for (std::size_t i = 0; i < n; ++i) {
      m[i] = (code >> i) & 1ULL ? std::int8_t{1} : std::int8_t{-1};
    }
    best = std::min(best, model.energy(m));
  }
  return best;
}

TEST(Sqa, PerpCouplingPositiveAndDivergesAsGammaVanishes) {
  const auto model = spin_glass(6, 1);
  SqaOptions opts;
  SimulatedQuantumAnnealer sqa(model, opts);
  const double weak = sqa.perp_coupling(3.0);
  const double strong = sqa.perp_coupling(0.01);
  EXPECT_GT(weak, 0.0);
  EXPECT_GT(strong, weak);  // slices lock together as Gamma -> 0
}

TEST(Sqa, FindsSpinGlassGroundState) {
  const auto model = spin_glass(10, 3);
  SqaOptions opts;
  opts.trotter_slices = 12;
  opts.sweeps = 600;
  opts.beta = 4.0;
  SimulatedQuantumAnnealer sqa(model, opts);
  util::Xoshiro256pp rng(5);
  const auto result = sqa.run(rng);
  EXPECT_DOUBLE_EQ(result.best_energy, exact_ground(model));
}

TEST(Sqa, ReportedEnergiesMatchStates) {
  const auto model = spin_glass(9, 7);
  SqaOptions opts;
  opts.sweeps = 100;
  SimulatedQuantumAnnealer sqa(model, opts);
  util::Xoshiro256pp rng(2);
  const auto result = sqa.run(rng);
  EXPECT_NEAR(model.energy(result.best), result.best_energy, 1e-7);
  EXPECT_NEAR(model.energy(result.last), result.last_energy, 1e-7);
  EXPECT_LE(result.best_energy, result.last_energy + 1e-12);
}

TEST(Sqa, SweepAccountingIncludesSlices) {
  const auto model = spin_glass(6, 2);
  SqaOptions opts;
  opts.trotter_slices = 8;
  opts.sweeps = 50;
  SimulatedQuantumAnnealer sqa(model, opts);
  util::Xoshiro256pp rng(1);
  EXPECT_EQ(sqa.run(rng).sweeps, 400u);
}

TEST(Sqa, InvalidOptionsThrow) {
  const auto model = spin_glass(5, 4);
  SqaOptions bad;
  bad.trotter_slices = 1;
  EXPECT_THROW(SimulatedQuantumAnnealer(model, bad), std::invalid_argument);
  SqaOptions bad2;
  bad2.beta = 0.0;
  EXPECT_THROW(SimulatedQuantumAnnealer(model, bad2), std::invalid_argument);
  SqaOptions bad3;
  bad3.gamma_end = 0.0;
  EXPECT_THROW(SimulatedQuantumAnnealer(model, bad3), std::invalid_argument);
  SqaOptions bad4;
  bad4.gamma_start = 0.005;
  bad4.gamma_end = 0.01;
  EXPECT_THROW(SimulatedQuantumAnnealer(model, bad4), std::invalid_argument);
}

TEST(SqaBackend, RunBeforeBindThrows) {
  SqaBackend backend(SqaOptions{});
  util::Xoshiro256pp rng(1);
  EXPECT_THROW(backend.run(rng), std::logic_error);
}

TEST(SqaBackend, DrivesSaimToQkpOptimum) {
  const auto inst = problems::make_paper_qkp(12, 50, 9);
  const auto mapping = problems::qkp_to_problem(inst);
  const auto exact = exact::exhaustive_minimize(
      inst.n(), [&](std::span<const std::uint8_t> x) {
        exact::Verdict v;
        v.feasible = inst.feasible(x);
        v.cost = static_cast<double>(inst.cost(x));
        return v;
      });

  SqaOptions sopts;
  sopts.trotter_slices = 8;
  sopts.sweeps = 200;
  sopts.beta = 8.0;
  SqaBackend backend(sopts);
  core::SaimOptions opts;
  opts.iterations = 120;
  opts.eta = 20.0;
  opts.seed = 11;
  core::SaimSolver solver(mapping.problem, backend, opts);
  const auto result = solver.solve(core::make_qkp_evaluator(inst));
  ASSERT_TRUE(result.found_feasible);
  EXPECT_DOUBLE_EQ(result.best_cost, exact.best_cost);
}

TEST(SqaBackend, DeterministicPerSeed) {
  const auto model = spin_glass(8, 6);
  SqaOptions opts;
  opts.sweeps = 80;
  SqaBackend backend(opts);
  backend.bind(model);
  util::Xoshiro256pp a(3);
  util::Xoshiro256pp b(3);
  EXPECT_EQ(backend.run(a).best, backend.run(b).best);
}

}  // namespace
}  // namespace saim::anneal
