#include <gtest/gtest.h>

#include "anneal/exact_backend.hpp"
#include "anneal/tabu.hpp"
#include "core/penalty_method.hpp"
#include "core/saim_solver.hpp"
#include "exact/exhaustive.hpp"
#include "problems/qkp.hpp"

namespace saim::anneal {
namespace {

ising::IsingModel spin_glass(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  ising::IsingModel model(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      model.add_coupling(i, j, rng.bernoulli(0.5) ? 1.0 : -1.0);
    }
  }
  return model;
}

double exact_ground(const ising::IsingModel& model) {
  const std::size_t n = model.n();
  double best = 1e300;
  ising::Spins m(n);
  for (std::uint64_t code = 0; code < (1ULL << n); ++code) {
    for (std::size_t i = 0; i < n; ++i) {
      m[i] = (code >> i) & 1ULL ? std::int8_t{1} : std::int8_t{-1};
    }
    best = std::min(best, model.energy(m));
  }
  return best;
}

TEST(TabuSearch, FindsSpinGlassGroundState) {
  const auto model = spin_glass(12, 3);
  TabuOptions opts;
  opts.steps = 3000;
  opts.tenure = 8;
  TabuSearch tabu(model, opts);
  util::Xoshiro256pp rng(1);
  const auto result = tabu.run(rng);
  EXPECT_DOUBLE_EQ(result.best_energy, exact_ground(model));
  EXPECT_NEAR(model.energy(result.best), result.best_energy, 1e-9);
  EXPECT_NEAR(model.energy(result.last), result.last_energy, 1e-9);
}

TEST(TabuSearch, IncrementalDeltasStayConsistent) {
  // Long run on a field-ful model; final reported energies must match
  // fresh recomputation (catches any drift in the delta bookkeeping).
  util::Xoshiro256pp seed_rng(5);
  ising::IsingModel model(15);
  for (std::size_t i = 0; i < 15; ++i) {
    model.add_field(i, seed_rng.uniform_sym());
    for (std::size_t j = i + 1; j < 15; ++j) {
      if (seed_rng.bernoulli(0.4)) {
        model.add_coupling(i, j, seed_rng.uniform_sym() * 2.0);
      }
    }
  }
  TabuOptions opts;
  opts.steps = 5000;
  opts.stall_limit = 100;
  TabuSearch tabu(model, opts);
  util::Xoshiro256pp rng(2);
  const auto result = tabu.run(rng);
  EXPECT_NEAR(model.energy(result.last), result.last_energy, 1e-7);
  EXPECT_NEAR(model.energy(result.best), result.best_energy, 1e-7);
}

TEST(TabuSearch, ZeroTenureThrows) {
  const auto model = spin_glass(6, 1);
  TabuOptions opts;
  opts.tenure = 0;
  EXPECT_THROW(TabuSearch(model, opts), std::invalid_argument);
}

TEST(TabuBackend, RunBeforeBindThrows) {
  TabuBackend backend(TabuOptions{});
  util::Xoshiro256pp rng(1);
  EXPECT_THROW(backend.run(rng), std::logic_error);
}

TEST(TabuBackend, SweepEquivalentAccounting) {
  TabuOptions opts;
  opts.steps = 1000;
  TabuBackend backend(opts);
  const auto model = spin_glass(10, 2);
  backend.bind(model);
  EXPECT_EQ(backend.sweeps_per_run(), 100u);
  EXPECT_EQ(backend.name(), "tabu");
}

TEST(TabuBackend, DrivesSaimToQkpOptimum) {
  const auto inst = problems::make_paper_qkp(12, 50, 9);
  const auto mapping = problems::qkp_to_problem(inst);
  const auto exact = exact::exhaustive_minimize(
      inst.n(), [&](std::span<const std::uint8_t> x) {
        exact::Verdict v;
        v.feasible = inst.feasible(x);
        v.cost = static_cast<double>(inst.cost(x));
        return v;
      });
  TabuOptions topts;
  topts.steps = 3000;
  TabuBackend backend(topts);
  core::SaimOptions opts;
  opts.iterations = 120;
  opts.eta = 20.0;
  opts.seed = 6;
  core::SaimSolver solver(mapping.problem, backend, opts);
  const auto result = solver.solve(core::make_qkp_evaluator(inst));
  ASSERT_TRUE(result.found_feasible);
  EXPECT_DOUBLE_EQ(result.best_cost, exact.best_cost);
}

TEST(ExactBackend, ReturnsTrueGroundState) {
  const auto model = spin_glass(10, 7);
  ExactBackend backend;
  backend.bind(model);
  util::Xoshiro256pp rng(1);
  const auto result = backend.run(rng);
  EXPECT_DOUBLE_EQ(result.best_energy, exact_ground(model));
  EXPECT_EQ(result.last, result.best);
}

TEST(ExactBackend, IsDeterministic) {
  const auto model = spin_glass(8, 9);
  ExactBackend backend;
  backend.bind(model);
  util::Xoshiro256pp a(1);
  util::Xoshiro256pp b(999);  // rng must not matter
  EXPECT_EQ(backend.run(a).best, backend.run(b).best);
}

TEST(ExactBackend, RejectsOversizedModels) {
  ising::IsingModel model(27);
  ExactBackend backend;
  EXPECT_THROW(backend.bind(model), std::invalid_argument);
}

TEST(ExactBackend, RunBeforeBindThrows) {
  ExactBackend backend;
  util::Xoshiro256pp rng(1);
  EXPECT_THROW(backend.run(rng), std::logic_error);
}

TEST(ExactBackend, SaimWithExactInnerSolveIsPureDualAscent) {
  // With an exact inner minimizer, Algorithm 1 is deterministic textbook
  // subgradient ascent: the feasible pool and best cost must be identical
  // across repeated solves, and SAIM must find the constrained optimum of
  // a small QKP.
  const auto inst = problems::make_paper_qkp(10, 50, 4);
  const auto mapping = problems::qkp_to_problem(inst);
  ASSERT_LE(mapping.problem.n(), 26u);
  const auto exact = exact::exhaustive_minimize(
      inst.n(), [&](std::span<const std::uint8_t> x) {
        exact::Verdict v;
        v.feasible = inst.feasible(x);
        v.cost = static_cast<double>(inst.cost(x));
        return v;
      });

  auto solve_once = [&] {
    ExactBackend backend;
    core::SaimOptions opts;
    opts.iterations = 60;
    opts.eta = 5.0;
    opts.penalty_alpha = 2.0;
    opts.seed = 1;
    core::SaimSolver solver(mapping.problem, backend, opts);
    return solver.solve(core::make_qkp_evaluator(inst));
  };
  const auto a = solve_once();
  const auto b = solve_once();
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.feasible_count, b.feasible_count);
  ASSERT_TRUE(a.found_feasible);
  EXPECT_DOUBLE_EQ(a.best_cost, exact.best_cost);
}

}  // namespace
}  // namespace saim::anneal
