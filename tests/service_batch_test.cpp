// Same-instance batch scheduling + warm-start pool, end to end through
// SolveService: determinism of batch members vs solo solves, per-member
// demultiplexing of deadlines and cancellation, and the opt-in warm-start
// contract (pool consulted only when asked; pooled samples feasible).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/penalty_method.hpp"
#include "core/saim_solver.hpp"
#include "problems/qkp.hpp"
#include "service/backend_factory.hpp"
#include "service/solve_service.hpp"

namespace saim {
namespace {

using namespace std::chrono_literals;

struct TestProblem {
  std::shared_ptr<problems::QkpInstance> instance;
  std::shared_ptr<const problems::ConstrainedProblem> problem;
};

TestProblem make_test_problem(std::size_t n = 30, int index = 1) {
  TestProblem t;
  t.instance = std::make_shared<problems::QkpInstance>(
      problems::make_paper_qkp(n, 50, index));
  t.problem = std::make_shared<problems::ConstrainedProblem>(
      problems::qkp_to_problem(*t.instance).problem);
  return t;
}

service::SolveRequest make_request(const TestProblem& t,
                                   std::size_t iterations = 20,
                                   std::uint64_t seed = 1) {
  service::SolveRequest request;
  request.problem = t.problem;
  request.evaluator = [inst = t.instance,
                       ev = core::make_qkp_evaluator(*t.instance)](
                          std::span<const std::uint8_t> x) { return ev(x); };
  request.backend.sweeps = 100;
  request.options.iterations = iterations;
  request.options.seed = seed;
  return request;
}

core::SolveResult solve_direct(const TestProblem& t, std::size_t iterations,
                               std::uint64_t seed) {
  auto request = make_request(t, iterations, seed);
  auto backend = service::make_backend(request.backend);
  core::SaimSolver solver(*t.problem, *backend, request.options);
  return solver.solve(core::make_qkp_evaluator(*t.instance));
}

TEST(ServiceBatch, MembersMatchSoloBitForBitWithWarmStartOff) {
  // Even with a HOT warm pool for this very problem, batch members that
  // did not opt in must reproduce the solo solver exactly: warm starts are
  // opt-in, and batching is a pure scheduling optimization.
  service::SolveService svc(
      {.workers = 1, .cache_capacity = 0, .max_batch = 8});
  const auto t = make_test_problem();
  svc.submit(make_request(t, 20, 77)).wait();  // completed: pool is hot

  // Occupy the single worker so the follow-ups pile up in the queue and
  // get drained into one batch.
  const auto blocker = make_test_problem(30, 7);
  auto head = svc.submit(make_request(blocker, 200));

  std::vector<service::JobHandle> handles;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    handles.push_back(svc.submit(make_request(t, 30, seed)));
  }
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto response = handles[seed - 1].wait();
    ASSERT_EQ(response->status, core::Status::kCompleted);
    const auto direct = solve_direct(t, 30, seed);
    EXPECT_EQ(response->result->best_cost, direct.best_cost) << seed;
    EXPECT_EQ(response->result->best_x, direct.best_x) << seed;
    EXPECT_EQ(response->result->best_config, direct.best_config) << seed;
    EXPECT_EQ(response->result->feasible_count, direct.feasible_count);
    EXPECT_EQ(response->result->total_sweeps, direct.total_sweeps);
    EXPECT_FALSE(response->warm_started);
  }
  head.wait();
  const auto stats = svc.stats();
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GE(stats.batched_jobs, 2u);
  EXPECT_EQ(stats.warm_seeded, 0u);  // nobody opted in
}

TEST(ServiceBatch, MixedDeadlinesDemultiplex) {
  // One batch member carries a deadline that expires mid-batch; its
  // partial best comes back as kDeadline while its batch-mate completes
  // untouched.
  service::SolveService svc(
      {.workers = 1, .cache_capacity = 0, .max_batch = 8});
  const auto blocker = make_test_problem(30, 7);
  const auto t = make_test_problem();
  auto head = svc.submit(make_request(blocker, 60));

  // The deadline-free job is popped first and the deadline-carrying twin
  // is drained into ITS batch (a deadline job popped first would batch
  // nothing extra — lockstep mates would dilute its time budget).
  auto b = svc.submit(make_request(t, 20, 2));
  auto doomed = make_request(t, 1000000, 1);
  doomed.timeout = 300ms;
  auto a = svc.submit(std::move(doomed));

  const auto rb = b.wait();
  EXPECT_EQ(rb->status, core::Status::kCompleted);
  EXPECT_EQ(rb->result->total_runs, 20u);

  const auto ra = a.wait();
  EXPECT_EQ(ra->status, core::Status::kDeadline);
  EXPECT_LT(ra->result->total_runs, 1000000u);
  if (ra->batch_size == 2) {  // the two were batched (no timing fluke)
    EXPECT_EQ(rb->batch_size, 2u);
  }
  head.wait();
  EXPECT_EQ(svc.stats().deadline_expired, 1u);
}

TEST(ServiceBatch, CancelledMemberLeavesBatchMatesAlone) {
  service::SolveService svc(
      {.workers = 1, .cache_capacity = 0, .max_batch = 8});
  const auto blocker = make_test_problem(30, 7);
  const auto t = make_test_problem();
  auto head = svc.submit(make_request(blocker, 60));

  auto a = svc.submit(make_request(t, 1000000, 1));
  auto b = svc.submit(make_request(t, 25, 2));

  // The short member settles (and its waiter wakes) while the long member
  // is still mid-batch — per-member demultiplexing, not batch-final fanout.
  const auto rb = b.wait();
  EXPECT_EQ(rb->status, core::Status::kCompleted);
  EXPECT_EQ(rb->result->total_runs, 25u);

  a.cancel();
  const auto ra = a.wait();
  EXPECT_EQ(ra->status, core::Status::kCancelled);
  EXPECT_LT(ra->result->total_runs, 1000000u);
  head.wait();
  EXPECT_EQ(svc.stats().cancelled, 1u);
}

TEST(ServiceBatch, WarmStartImportsPoolBestAndStaysFeasible) {
  service::SolveService svc({.workers = 1, .cache_capacity = 8});
  const auto t = make_test_problem();

  const auto cold = svc.submit(make_request(t, 25, 1)).wait();
  ASSERT_EQ(cold->status, core::Status::kCompleted);
  ASSERT_TRUE(cold->result->found_feasible);
  const double cold_best = cold->result->best_cost;

  auto warm_request = make_request(t, 5, 2);
  warm_request.warm_start = true;
  const auto warm = svc.submit(std::move(warm_request)).wait();
  ASSERT_EQ(warm->status, core::Status::kCompleted);
  EXPECT_TRUE(warm->warm_started);
  EXPECT_TRUE(warm->result->found_feasible);
  // The pool's best was imported, so the warm job can never fall short of
  // the cold best — and its best configuration must judge feasible on the
  // raw instance.
  EXPECT_LE(warm->result->best_cost, cold_best);
  ASSERT_FALSE(warm->result->best_config.empty());
  const auto verdict =
      core::make_qkp_evaluator(*t.instance)(warm->result->best_config);
  EXPECT_TRUE(verdict.feasible);
  EXPECT_EQ(svc.stats().warm_seeded, 1u);
}

TEST(ServiceBatch, WarmJobsBypassCacheAndCoalescing) {
  service::SolveService svc({.workers = 1, .cache_capacity = 8});
  const auto t = make_test_problem();
  svc.submit(make_request(t, 20, 1)).wait();  // fills pool + cache

  auto warm_a = make_request(t, 10, 5);
  warm_a.warm_start = true;
  auto warm_b = make_request(t, 10, 5);  // identical twin, also warm
  warm_b.warm_start = true;

  // Warm and cold twins must never collide in the cache.
  auto cold_twin = make_request(t, 10, 5);
  EXPECT_NE(service::SolveService::request_fingerprint(warm_a),
            service::SolveService::request_fingerprint(cold_twin));

  const auto ra = svc.submit(std::move(warm_a)).wait();
  const auto rb = svc.submit(std::move(warm_b)).wait();
  EXPECT_FALSE(ra->cache_hit);
  EXPECT_FALSE(rb->cache_hit);
  // Sequential identical warm submissions both execute: no replay, no
  // coalescing — each sees the pool as it stands when it runs.
  EXPECT_EQ(svc.stats().executed, 3u);
  EXPECT_EQ(svc.stats().coalesced, 0u);
}

TEST(ServiceBatch, WarmStartOffPoolDisabled) {
  // warm_pool_capacity = 0 turns the pool off entirely: opt-in jobs run
  // cold instead of being seeded.
  service::SolveService svc(
      {.workers = 1, .cache_capacity = 0, .warm_pool_capacity = 0});
  const auto t = make_test_problem();
  svc.submit(make_request(t, 20, 1)).wait();

  auto warm_request = make_request(t, 10, 2);
  warm_request.warm_start = true;
  const auto warm = svc.submit(std::move(warm_request)).wait();
  EXPECT_EQ(warm->status, core::Status::kCompleted);
  EXPECT_FALSE(warm->warm_started);
  EXPECT_EQ(svc.stats().warm_seeded, 0u);
}

TEST(ServiceBatch, MaxBatchOneDisablesBatching) {
  service::SolveService svc(
      {.workers = 1, .cache_capacity = 0, .max_batch = 1});
  const auto blocker = make_test_problem(30, 7);
  const auto t = make_test_problem();
  auto head = svc.submit(make_request(blocker, 100));
  auto a = svc.submit(make_request(t, 15, 1));
  auto b = svc.submit(make_request(t, 15, 2));
  EXPECT_EQ(a.wait()->batch_size, 1u);
  EXPECT_EQ(b.wait()->batch_size, 1u);
  head.wait();
  EXPECT_EQ(svc.stats().batches, 0u);
  EXPECT_EQ(svc.stats().batched_jobs, 0u);
}

TEST(ServiceBatch, DifferentBackendsNeverShareABatch) {
  // Same problem, different backend spec -> different batch key: both
  // must run (correctly, on their own backend), never fused.
  service::SolveService svc(
      {.workers = 1, .cache_capacity = 0, .max_batch = 8});
  const auto blocker = make_test_problem(30, 7);
  const auto t = make_test_problem();
  auto head = svc.submit(make_request(blocker, 100));
  auto a = svc.submit(make_request(t, 10, 1));
  auto tabu = make_request(t, 10, 1);
  tabu.backend.name = "tabu";
  auto b = svc.submit(std::move(tabu));
  const auto ra = a.wait();
  const auto rb = b.wait();
  EXPECT_EQ(ra->status, core::Status::kCompleted);
  EXPECT_EQ(rb->status, core::Status::kCompleted);
  EXPECT_EQ(ra->batch_size, 1u);
  EXPECT_EQ(rb->batch_size, 1u);
  head.wait();
}

}  // namespace
}  // namespace saim
