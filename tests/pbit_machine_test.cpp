#include "pbit/pbit_machine.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace saim::pbit {
namespace {

// Small frustrated-free ferromagnet: annealing must find the aligned
// ground states.
ising::IsingModel ferromagnet(std::size_t n, double j = 1.0) {
  ising::IsingModel ising(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = i + 1; k < n; ++k) {
      ising.add_coupling(i, k, j);
    }
  }
  return ising;
}

TEST(PBitMachine, RandomStateIsDeterministicPerSeed) {
  const auto model = ferromagnet(10);
  PBitMachine machine(model);
  util::Xoshiro256pp a(5);
  util::Xoshiro256pp b(5);
  EXPECT_EQ(machine.random_state(a), machine.random_state(b));
}

TEST(PBitMachine, RandomStateHasValidSpins) {
  const auto model = ferromagnet(50);
  PBitMachine machine(model);
  util::Xoshiro256pp rng(1);
  const auto m = machine.random_state(rng);
  for (const auto s : m) {
    EXPECT_TRUE(s == 1 || s == -1);
  }
}

TEST(PBitMachine, AnnealFindsFerromagnetGroundState) {
  const auto model = ferromagnet(12);
  PBitMachine machine(model);
  util::Xoshiro256pp rng(42);
  AnnealOptions opts;
  opts.sweeps = 300;
  const auto result = machine.anneal(Schedule::linear(5.0), opts, rng);
  // Ground state energy: all aligned, -C(12,2) = -66.
  EXPECT_DOUBLE_EQ(result.last_energy, -66.0);
  EXPECT_DOUBLE_EQ(model.energy(result.last), -66.0);
}

TEST(PBitMachine, ReportedEnergyMatchesState) {
  // The incrementally-tracked energy must equal a fresh recomputation.
  ising::IsingModel model(8);
  model.add_coupling(0, 1, -1.0);
  model.add_coupling(2, 3, 2.0);
  model.add_field(4, 0.7);
  model.add_field(5, -0.3);
  model.add_offset(1.5);
  PBitMachine machine(model);
  util::Xoshiro256pp rng(7);
  AnnealOptions opts;
  opts.sweeps = 50;
  const auto result = machine.anneal(Schedule::linear(2.0), opts, rng);
  EXPECT_NEAR(result.last_energy, model.energy(result.last), 1e-9);
}

TEST(PBitMachine, TrackBestNeverWorseThanLast) {
  const auto model = ferromagnet(10);
  PBitMachine machine(model);
  util::Xoshiro256pp rng(3);
  AnnealOptions opts;
  opts.sweeps = 100;
  opts.track_best = true;
  const auto result = machine.anneal(Schedule::linear(3.0), opts, rng);
  EXPECT_LE(result.best_energy, result.last_energy);
  EXPECT_NEAR(model.energy(result.best), result.best_energy, 1e-9);
}

TEST(PBitMachine, FieldBiasesSpins) {
  // Strong positive field on every spin: at high beta all spins go +1.
  ising::IsingModel model(6);
  for (std::size_t i = 0; i < 6; ++i) model.add_field(i, 5.0);
  PBitMachine machine(model);
  util::Xoshiro256pp rng(11);
  AnnealOptions opts;
  opts.sweeps = 100;
  const auto result = machine.anneal(Schedule::linear(10.0), opts, rng);
  for (const auto s : result.last) {
    EXPECT_EQ(s, 1);
  }
}

TEST(PBitMachine, AnnealFromContinuesGivenState) {
  const auto model = ferromagnet(8);
  PBitMachine machine(model);
  util::Xoshiro256pp rng(9);
  ising::Spins start(8, std::int8_t{1});  // already the ground state
  AnnealOptions opts;
  opts.sweeps = 50;
  // At high fixed beta the machine must stay in the ground state.
  const auto result =
      machine.anneal_from(start, Schedule::constant(20.0), opts, rng);
  EXPECT_DOUBLE_EQ(result.last_energy, model.energy(start));
}

TEST(PBitMachine, SweepOrderVariantsAllReachGroundState) {
  const auto model = ferromagnet(10);
  PBitMachine machine(model);
  for (const auto order :
       {SweepOrder::kSequential, SweepOrder::kRandomPermutation,
        SweepOrder::kRandomUniform}) {
    util::Xoshiro256pp rng(21);
    AnnealOptions opts;
    opts.sweeps = 400;
    opts.order = order;
    const auto result = machine.anneal(Schedule::linear(5.0), opts, rng);
    EXPECT_DOUBLE_EQ(result.last_energy, -45.0)
        << "order=" << static_cast<int>(order);
  }
}

TEST(PBitMachine, SampleInvokesObserverExactly) {
  const auto model = ferromagnet(4);
  PBitMachine machine(model);
  util::Xoshiro256pp rng(2);
  std::size_t calls = 0;
  machine.sample(1.0, 10, 25, rng, [&](const ising::Spins& m) {
    EXPECT_EQ(m.size(), 4u);
    ++calls;
  });
  EXPECT_EQ(calls, 25u);
}

TEST(PBitMachine, ZeroBetaIsUnbiasedCoinFlips) {
  // At beta=0, tanh(0)=0 and each p-bit is a fair coin regardless of input.
  ising::IsingModel model(1);
  model.add_field(0, 100.0);  // huge field must not matter at beta=0
  PBitMachine machine(model);
  util::Xoshiro256pp rng(31);
  std::size_t ups = 0;
  const std::size_t samples = 20000;
  machine.sample(0.0, 0, samples, rng, [&](const ising::Spins& m) {
    if (m[0] == 1) ++ups;
  });
  const double frac = static_cast<double>(ups) / samples;
  EXPECT_NEAR(frac, 0.5, 0.02);
}

TEST(PBitMachine, DeterministicGivenSeed) {
  const auto model = ferromagnet(10);
  PBitMachine machine(model);
  util::Xoshiro256pp a(77);
  util::Xoshiro256pp b(77);
  AnnealOptions opts;
  opts.sweeps = 60;
  const auto ra = machine.anneal(Schedule::linear(2.0), opts, a);
  const auto rb = machine.anneal(Schedule::linear(2.0), opts, b);
  EXPECT_EQ(ra.last, rb.last);
  EXPECT_DOUBLE_EQ(ra.last_energy, rb.last_energy);
}

}  // namespace
}  // namespace saim::pbit
