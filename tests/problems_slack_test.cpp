#include "problems/slack.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace saim::problems {
namespace {

TEST(SlackEncoding, ZeroBoundHasNoBits) {
  const auto enc = make_slack_encoding(0);
  EXPECT_EQ(enc.num_bits(), 0u);
  EXPECT_EQ(enc.max_value(), 0);
}

TEST(SlackEncoding, BoundOneIsSingleBit) {
  const auto enc = make_slack_encoding(1);
  ASSERT_EQ(enc.num_bits(), 1u);
  EXPECT_EQ(enc.coefficients[0], 1);
}

TEST(SlackEncoding, PaperBitCountFormula) {
  // Q = floor(log2(b) + 1) for several b values.
  for (const std::int64_t b : {1, 2, 3, 4, 7, 8, 42, 100, 1023, 1024}) {
    const auto enc = make_slack_encoding(b);
    const auto expected = static_cast<std::size_t>(
        std::floor(std::log2(static_cast<double>(b)) + 1.0));
    EXPECT_EQ(enc.num_bits(), expected) << "b=" << b;
  }
}

TEST(SlackEncoding, CoefficientsArePowersOfTwo) {
  const auto enc = make_slack_encoding(100);
  for (std::size_t q = 0; q < enc.num_bits(); ++q) {
    EXPECT_EQ(enc.coefficients[q], std::int64_t{1} << q);
  }
}

TEST(SlackEncoding, MaxValueCoversBound) {
  for (const std::int64_t b : {1, 5, 42, 100, 999, 4096}) {
    const auto enc = make_slack_encoding(b);
    EXPECT_GE(enc.max_value(), b) << "b=" << b;
    // And is the tight power-of-two bound 2^Q - 1.
    EXPECT_EQ(enc.max_value(),
              (std::int64_t{1} << enc.num_bits()) - 1);
  }
}

TEST(SlackEncoding, NegativeBoundThrows) {
  EXPECT_THROW(make_slack_encoding(-1), std::invalid_argument);
}

TEST(SlackEncoding, DecodeBitCountMismatchThrows) {
  const auto enc = make_slack_encoding(5);
  EXPECT_THROW(enc.decode({1}), std::invalid_argument);
}

TEST(SlackEncoding, EncodeClampsOutOfRange) {
  const auto enc = make_slack_encoding(10);  // max 15
  EXPECT_EQ(enc.decode(enc.encode(-5)), 0);
  EXPECT_EQ(enc.decode(enc.encode(100)), 15);
}

// Property sweep: encode/decode round-trips every representable value, and
// every value in [0, b] is representable (the paper's requirement for the
// inequality-to-equality transformation to be exact).
class SlackRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SlackRoundTrip, EveryValueRepresentable) {
  const std::int64_t bound = GetParam();
  const auto enc = make_slack_encoding(bound);
  for (std::int64_t v = 0; v <= enc.max_value(); ++v) {
    EXPECT_EQ(enc.decode(enc.encode(v)), v);
  }
}

TEST_P(SlackRoundTrip, AllBitPatternsDistinct) {
  const std::int64_t bound = GetParam();
  const auto enc = make_slack_encoding(bound);
  std::set<std::int64_t> seen;
  const std::size_t q = enc.num_bits();
  for (std::uint64_t code = 0; code < (1ULL << q); ++code) {
    std::vector<std::uint8_t> bits(q);
    for (std::size_t i = 0; i < q; ++i) {
      bits[i] = static_cast<std::uint8_t>((code >> i) & 1ULL);
    }
    seen.insert(enc.decode(bits));
  }
  // The canonical binary decomposition is a bijection onto [0, 2^Q-1].
  EXPECT_EQ(seen.size(), 1ULL << q);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), enc.max_value());
}

INSTANTIATE_TEST_SUITE_P(Bounds, SlackRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 15, 16, 42, 100,
                                           255, 256));

}  // namespace
}  // namespace saim::problems
