#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"

namespace saim::util {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
}

TEST(CsvEscape, CommaTriggersQuoting) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuoteIsDoubled) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineTriggersQuoting) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, InMemoryRows) {
  CsvWriter csv;
  csv.write_header({"x", "y"});
  csv.write_row(std::vector<std::string>{"1", "two,三"});
  csv.write_row(std::vector<double>{1.5, -2.25});
  const std::string expected = "x,y\n1,\"two,三\"\n1.5,-2.25\n";
  EXPECT_EQ(csv.buffer(), expected);
}

TEST(CsvWriter, FileMode) {
  const std::string path = ::testing::TempDir() + "saim_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_header({"a"});
    csv.write_row(std::vector<std::string>{"b"});
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "a\nb\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"),
               std::runtime_error);
}

ArgParser make_parser() {
  ArgParser p("prog", "test program");
  p.add_flag("n", "problem size", "100")
      .add_flag("eta", "step size", "20.0")
      .add_bool("full", "use paper-scale budgets");
  return p;
}

TEST(ArgParser, DefaultsApply) {
  auto p = make_parser();
  const std::array<const char*, 1> argv = {"prog"};
  ASSERT_TRUE(p.parse(1, argv.data()));
  EXPECT_EQ(p.get_int("n"), 100);
  EXPECT_DOUBLE_EQ(p.get_double("eta"), 20.0);
  EXPECT_FALSE(p.get_bool("full"));
}

TEST(ArgParser, SpaceSeparatedValues) {
  auto p = make_parser();
  const std::array<const char*, 5> argv = {"prog", "--n", "250", "--eta",
                                           "0.05"};
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(p.get_int("n"), 250);
  EXPECT_DOUBLE_EQ(p.get_double("eta"), 0.05);
}

TEST(ArgParser, EqualsForm) {
  auto p = make_parser();
  const std::array<const char*, 2> argv = {"prog", "--n=33"};
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(p.get_int("n"), 33);
}

TEST(ArgParser, BoolFlagForms) {
  auto p = make_parser();
  const std::array<const char*, 2> argv = {"prog", "--full"};
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(p.get_bool("full"));

  auto q = make_parser();
  const std::array<const char*, 2> argv2 = {"prog", "--full=false"};
  ASSERT_TRUE(q.parse(static_cast<int>(argv2.size()), argv2.data()));
  EXPECT_FALSE(q.get_bool("full"));
}

TEST(ArgParser, MultiFlagCollectsEveryOccurrenceInOrder) {
  ArgParser p("prog", "test program");
  p.add_multi("connect", "remote shard host:port");
  const std::array<const char*, 6> argv = {
      "prog", "--connect", "a:1", "--connect=b:2", "--connect", "c:3"};
  ASSERT_TRUE(p.parse(argv.size(), argv.data()));
  const auto all = p.get_all("connect");
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], "a:1");
  EXPECT_EQ(all[1], "b:2");
  EXPECT_EQ(all[2], "c:3");
  EXPECT_EQ(p.get("connect"), "c:3") << "get() sees the last occurrence";

  ArgParser empty("prog", "test program");
  empty.add_multi("connect", "remote shard host:port");
  const std::array<const char*, 1> none = {"prog"};
  ASSERT_TRUE(empty.parse(1, none.data()));
  EXPECT_TRUE(empty.get_all("connect").empty());
  EXPECT_THROW((void)empty.get_all("nope"), std::invalid_argument);
}

TEST(ArgParser, UnknownFlagFails) {
  auto p = make_parser();
  const std::array<const char*, 2> argv = {"prog", "--bogus"};
  EXPECT_FALSE(p.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(ArgParser, UnknownFlagErrorNamesTheFlag) {
  auto p = make_parser();
  const std::array<const char*, 2> argv = {"prog", "--bogus"};
  ASSERT_FALSE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(p.error().find("--bogus"), std::string::npos) << p.error();
}

TEST(ArgParser, MissingValueErrorNamesTheFlag) {
  auto p = make_parser();
  const std::array<const char*, 2> argv = {"prog", "--n"};
  ASSERT_FALSE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(p.error().find("--n"), std::string::npos);
}

TEST(ArgParser, ErrorClearsOnSuccessfulParse) {
  auto p = make_parser();
  const std::array<const char*, 2> argv_bad = {"prog", "--bogus"};
  ASSERT_FALSE(p.parse(static_cast<int>(argv_bad.size()), argv_bad.data()));
  EXPECT_FALSE(p.error().empty());
  const std::array<const char*, 1> argv_ok = {"prog"};
  ASSERT_TRUE(p.parse(1, argv_ok.data()));
  EXPECT_TRUE(p.error().empty());
}

TEST(ArgParser, DuplicateFlagRegistrationThrows) {
  ArgParser p("prog", "test program");
  p.add_flag("n", "problem size", "100");
  EXPECT_THROW(p.add_flag("n", "again", "7"), std::logic_error);
  EXPECT_THROW(p.add_bool("n", "as bool"), std::logic_error);
  // A bool name can't be reused by a value flag either.
  p.add_bool("full", "paper scale");
  EXPECT_THROW(p.add_flag("full", "oops", "1"), std::logic_error);
}

TEST(ArgParser, DuplicateRegistrationErrorNamesTheFlag) {
  ArgParser p("prog", "test program");
  p.add_flag("eta", "step", "20");
  try {
    p.add_flag("eta", "again", "1");
    FAIL() << "expected throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("--eta"), std::string::npos);
  }
}

TEST(ArgParser, MissingValueFails) {
  auto p = make_parser();
  const std::array<const char*, 2> argv = {"prog", "--n"};
  EXPECT_FALSE(p.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(ArgParser, HelpReturnsFalse) {
  auto p = make_parser();
  const std::array<const char*, 2> argv = {"prog", "--help"};
  EXPECT_FALSE(p.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(ArgParser, UsageMentionsFlags) {
  auto p = make_parser();
  const std::string u = p.usage();
  EXPECT_NE(u.find("--n"), std::string::npos);
  EXPECT_NE(u.find("--eta"), std::string::npos);
  EXPECT_NE(u.find("problem size"), std::string::npos);
}

TEST(ArgParser, GetUnregisteredThrows) {
  auto p = make_parser();
  EXPECT_THROW(p.get("nope"), std::invalid_argument);
}

TEST(Logging, LevelThresholdRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}

}  // namespace
}  // namespace saim::util
