// Metamorphic properties: transformations of an instance with a known
// effect on the solution set. These catch sign slips, scaling errors and
// indexing bugs that single-instance unit tests can miss.
#include <gtest/gtest.h>

#include <set>

#include "exact/exhaustive.hpp"
#include "exact/knapsack_dp.hpp"
#include "exact/mkp_branch_bound.hpp"
#include "problems/mkp.hpp"
#include "problems/qkp.hpp"
#include "util/rng.hpp"

namespace saim {
namespace {

exact::ExhaustiveResult solve_qkp_exhaustive(
    const problems::QkpInstance& inst) {
  return exact::exhaustive_minimize(
      inst.n(), [&](std::span<const std::uint8_t> x) {
        exact::Verdict v;
        v.feasible = inst.feasible(x);
        v.cost = static_cast<double>(inst.cost(x));
        return v;
      });
}

class QkpMetamorphic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QkpMetamorphic, ScalingObjectiveScalesOptimum) {
  problems::QkpGeneratorParams p;
  p.n = 10;
  p.density = 0.5;
  p.seed = GetParam();
  const auto inst = problems::generate_qkp(p);

  const std::size_t n = inst.n();
  std::vector<std::int64_t> values(n);
  std::vector<std::int64_t> pairs(n * n);
  std::vector<std::int64_t> weights(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = 3 * inst.value(i);
    weights[i] = inst.weight(i);
    for (std::size_t j = 0; j < n; ++j) {
      pairs[i * n + j] = 3 * inst.pair_value(i, j);
    }
  }
  const problems::QkpInstance scaled("scaled", values, pairs, weights,
                                     inst.capacity());
  const auto base = solve_qkp_exhaustive(inst);
  const auto tripled = solve_qkp_exhaustive(scaled);
  ASSERT_TRUE(base.found);
  EXPECT_DOUBLE_EQ(tripled.best_cost, 3.0 * base.best_cost);
}

TEST_P(QkpMetamorphic, LargerCapacityNeverHurts) {
  problems::QkpGeneratorParams p;
  p.n = 10;
  p.density = 0.5;
  p.seed = GetParam() + 100;
  const auto inst = problems::generate_qkp(p);

  const std::size_t n = inst.n();
  std::vector<std::int64_t> values(n);
  std::vector<std::int64_t> pairs(n * n);
  std::vector<std::int64_t> weights(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = inst.value(i);
    weights[i] = inst.weight(i);
    for (std::size_t j = 0; j < n; ++j) {
      pairs[i * n + j] = inst.pair_value(i, j);
    }
  }
  const problems::QkpInstance roomier("roomier", values, pairs, weights,
                                      inst.capacity() + 25);
  const auto base = solve_qkp_exhaustive(inst);
  const auto more = solve_qkp_exhaustive(roomier);
  // Minimization: more capacity -> cost can only go down or stay.
  EXPECT_LE(more.best_cost, base.best_cost);
  // And the feasible set only grows.
  EXPECT_GE(more.feasible_count, base.feasible_count);
}

TEST_P(QkpMetamorphic, SlackExtendedFeasibleSetMatchesRawInequality) {
  // Projecting the slack-extended equality system's feasible set onto the
  // decision bits must equal the raw { x : a.x <= b } set.
  problems::QkpGeneratorParams p;
  p.n = 6;
  p.density = 0.6;
  p.seed = GetParam() + 200;
  p.max_weight = 6;  // keep the slack register small: total <= ~22 bits
  auto inst = problems::generate_qkp(p);
  const auto mapping = problems::qkp_to_problem(inst);
  const std::size_t total = mapping.problem.n();
  ASSERT_LE(total, 22u);

  std::set<std::uint64_t> raw_feasible;
  for (std::uint64_t code = 0; code < (1ULL << inst.n()); ++code) {
    std::vector<std::uint8_t> x(inst.n());
    for (std::size_t i = 0; i < inst.n(); ++i) {
      x[i] = static_cast<std::uint8_t>((code >> i) & 1ULL);
    }
    if (inst.feasible(x)) raw_feasible.insert(code);
  }

  std::set<std::uint64_t> projected;
  for (std::uint64_t code = 0; code < (1ULL << total); ++code) {
    std::vector<std::uint8_t> x(total);
    for (std::size_t i = 0; i < total; ++i) {
      x[i] = static_cast<std::uint8_t>((code >> i) & 1ULL);
    }
    if (mapping.problem.max_violation(x) <= 1e-9) {
      projected.insert(code & ((1ULL << inst.n()) - 1));
    }
  }
  EXPECT_EQ(projected, raw_feasible);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QkpMetamorphic,
                         ::testing::Range<std::uint64_t>(0, 6));

class MkpMetamorphic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MkpMetamorphic, ItemPermutationPermutesSolution) {
  problems::MkpGeneratorParams p;
  p.n = 16;
  p.m = 3;
  p.seed = GetParam();
  const auto inst = problems::generate_mkp(p);

  // Reverse item order.
  const std::size_t n = inst.n();
  std::vector<std::int64_t> values(n);
  std::vector<std::int64_t> weights(inst.m() * n);
  for (std::size_t j = 0; j < n; ++j) {
    values[j] = inst.value(n - 1 - j);
    for (std::size_t i = 0; i < inst.m(); ++i) {
      weights[i * n + j] = inst.weight(i, n - 1 - j);
    }
  }
  const problems::MkpInstance reversed(
      "rev", values, weights,
      {inst.capacities().begin(), inst.capacities().end()});

  const auto a = exact::solve_mkp_bnb(inst);
  const auto b = exact::solve_mkp_bnb(reversed);
  ASSERT_TRUE(a.proven_optimal);
  ASSERT_TRUE(b.proven_optimal);
  EXPECT_EQ(a.best_profit, b.best_profit);
}

TEST_P(MkpMetamorphic, DroppingAConstraintNeverHurts) {
  problems::MkpGeneratorParams p;
  p.n = 18;
  p.m = 3;
  p.seed = GetParam() + 50;
  const auto inst = problems::generate_mkp(p);

  // Remove the last knapsack.
  std::vector<std::int64_t> weights;
  for (std::size_t i = 0; i + 1 < inst.m(); ++i) {
    const auto row = inst.weight_row(i);
    weights.insert(weights.end(), row.begin(), row.end());
  }
  const problems::MkpInstance relaxed(
      "relaxed", {inst.values().begin(), inst.values().end()},
      std::move(weights),
      {inst.capacities().begin(), inst.capacities().end() - 1});

  const auto full = exact::solve_mkp_bnb(inst);
  const auto fewer = exact::solve_mkp_bnb(relaxed);
  ASSERT_TRUE(full.proven_optimal);
  ASSERT_TRUE(fewer.proven_optimal);
  EXPECT_GE(fewer.best_profit, full.best_profit);
}

TEST_P(MkpMetamorphic, SingleConstraintMkpEqualsKnapsackDp) {
  problems::MkpGeneratorParams p;
  p.n = 20;
  p.m = 1;
  p.seed = GetParam() + 90;
  p.max_weight = 50;
  const auto inst = problems::generate_mkp(p);
  const auto bnb = exact::solve_mkp_bnb(inst);
  ASSERT_TRUE(bnb.proven_optimal);
  const auto row = inst.weight_row(0);
  const auto dp = exact::solve_knapsack_dp(
      inst.values(), row, inst.capacity(0));
  EXPECT_EQ(bnb.best_profit, dp.best_profit);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MkpMetamorphic,
                         ::testing::Range<std::uint64_t>(0, 6));

}  // namespace
}  // namespace saim
