// Property tests for HashRing::replicas — the replica-set contract the
// whole replication layer (warm handoff fan-out, gossip, hedged requests,
// hot-key routing) builds on. Pinned properties, over random memberships
// and key sets:
//
//   * a replica set holds min(R, live) DISTINCT live shards, led by the
//     key's owner;
//   * it is a pure function of the membership — rebuilding the ring, or
//     adding the same shards in a different order, yields the identical
//     sets (vnode points depend only on slot indices);
//   * removing a shard remaps minimally: sets that did not contain the
//     removed shard are unchanged, sets that did keep every surviving
//     member (the clockwise walk only skips the dead shard's points).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "service/shard_router.hpp"
#include "util/rng.hpp"

namespace saim::service {
namespace {

std::uint64_t key_of(std::uint64_t k) { return k * 0x9e3779b97f4a7c15ULL; }

TEST(HashRingReplicas, DistinctLiveShardsLedByTheOwner) {
  util::Xoshiro256pp rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    // Random membership: 1..6 shards out of 8 slots.
    HashRing ring(64);
    std::vector<std::size_t> members;
    for (std::size_t s = 0; s < 8; ++s) {
      if (rng.bernoulli(0.5)) {
        ring.add(s);
        members.push_back(s);
      }
    }
    if (members.empty()) {
      ring.add(3);
      members.push_back(3);
    }
    for (const std::size_t r : {std::size_t{1}, std::size_t{2},
                                std::size_t{3}}) {
      for (std::uint64_t k = 0; k < 512; ++k) {
        const auto set = ring.replicas(key_of(k), r);
        ASSERT_EQ(set.size(), std::min(r, members.size()));
        EXPECT_EQ(set.front(), ring.route(key_of(k)))
            << "the owner must lead its replica set";
        std::set<std::size_t> distinct(set.begin(), set.end());
        EXPECT_EQ(distinct.size(), set.size()) << "replicas must be distinct";
        for (const std::size_t shard : set) {
          EXPECT_TRUE(ring.contains(shard)) << "replicas must be live";
        }
      }
    }
  }
}

TEST(HashRingReplicas, CountIsClampedToTheLiveShards) {
  HashRing ring(64);
  ring.add(0);
  ring.add(1);
  EXPECT_EQ(ring.replicas(42, 0).size(), 1u) << "count 0 clamps up to 1";
  EXPECT_EQ(ring.replicas(42, 5).size(), 2u) << "count clamps to live count";
  HashRing empty;
  EXPECT_THROW((void)empty.replicas(42, 2), std::runtime_error);
}

TEST(HashRingReplicas, DeterministicAcrossRebuildsAndAddOrder) {
  HashRing forward(64), reverse(64), rebuilt(64);
  const std::vector<std::size_t> members{0, 2, 3, 5, 6};
  for (const std::size_t s : members) forward.add(s);
  for (auto it = members.rbegin(); it != members.rend(); ++it) {
    reverse.add(*it);
  }
  // A ring that lost and regained a member must converge to the same
  // sets: revive_shard relies on this to move a keyslice (and its warm
  // pools) back after a respawn.
  for (const std::size_t s : members) rebuilt.add(s);
  rebuilt.remove(3);
  rebuilt.add(3);
  for (std::uint64_t k = 0; k < 1024; ++k) {
    const auto want = forward.replicas(key_of(k), 3);
    EXPECT_EQ(reverse.replicas(key_of(k), 3), want);
    EXPECT_EQ(rebuilt.replicas(key_of(k), 3), want);
  }
}

TEST(HashRingReplicas, RemovalRemapsOnlySetsThatHeldTheDeadShard) {
  HashRing ring(64);
  for (std::size_t s = 0; s < 5; ++s) ring.add(s);
  const std::size_t dead = 2;
  std::vector<std::vector<std::size_t>> before;
  for (std::uint64_t k = 0; k < 2048; ++k) {
    before.push_back(ring.replicas(key_of(k), 2));
  }
  ring.remove(dead);
  std::size_t touched = 0;
  for (std::uint64_t k = 0; k < 2048; ++k) {
    const auto now = ring.replicas(key_of(k), 2);
    const auto& was = before[k];
    if (std::find(was.begin(), was.end(), dead) == was.end()) {
      EXPECT_EQ(now, was) << "sets without the dead shard must not move";
    } else {
      ++touched;
      // Every surviving member keeps its place in the set; only the dead
      // shard's slot is refilled (possibly reordering owner vs backup
      // when the dead shard WAS the owner).
      for (const std::size_t survivor : was) {
        if (survivor == dead) continue;
        EXPECT_NE(std::find(now.begin(), now.end(), survivor), now.end())
            << "survivor " << survivor << " evicted from a replica set";
      }
      EXPECT_EQ(std::find(now.begin(), now.end(), dead), now.end());
    }
  }
  EXPECT_GT(touched, 0u) << "the dead shard must have appeared somewhere";
}

}  // namespace
}  // namespace saim::service
