#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

namespace saim::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, SameSeedSameStream) {
  Xoshiro256pp a(7);
  Xoshiro256pp b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Xoshiro, ConsecutiveSeedsDecorrelated) {
  // SplitMix64 seeding must break the low-entropy structure of seeds 0,1,2.
  Xoshiro256pp a(0);
  Xoshiro256pp b(1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, Uniform01InRange) {
  Xoshiro256pp rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformSymCoversBothSigns) {
  Xoshiro256pp rng(3);
  int neg = 0;
  int pos = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform_sym();
    ASSERT_GE(u, -1.0);
    ASSERT_LT(u, 1.0);
    (u < 0 ? neg : pos)++;
  }
  // Should be close to 50/50; allow generous slack.
  EXPECT_GT(neg, 4000);
  EXPECT_GT(pos, 4000);
}

TEST(Xoshiro, Uniform01MeanIsHalf) {
  Xoshiro256pp rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro, BelowStaysBelow) {
  Xoshiro256pp rng(5);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.below(17), 17u);
  }
}

TEST(Xoshiro, BelowZeroReturnsZero) {
  Xoshiro256pp rng(5);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Xoshiro, BelowOneAlwaysZero) {
  Xoshiro256pp rng(5);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(rng.below(1), 0u);
  }
}

TEST(Xoshiro, BelowHitsAllResidues) {
  Xoshiro256pp rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro, RangeInclusiveBounds) {
  Xoshiro256pp rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro, RangeSingleton) {
  Xoshiro256pp rng(13);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.range(5, 5), 5);
  }
}

TEST(Xoshiro, BernoulliExtremes) {
  Xoshiro256pp rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Xoshiro, JumpProducesDisjointStream) {
  Xoshiro256pp a(21);
  Xoshiro256pp b(21);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(DeriveSeed, DistinctStreams) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    seeds.insert(derive_seed(12345, k));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeed, DependsOnMaster) {
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
}

TEST(DeriveSeed, IsDeterministic) {
  EXPECT_EQ(derive_seed(99, 7), derive_seed(99, 7));
}

// Coarse uniformity check: chi-square over 16 bins must not explode.
TEST(Xoshiro, ChiSquareUniformity) {
  Xoshiro256pp rng(123);
  std::array<int, 16> bins{};
  const int n = 160000;
  for (int i = 0; i < n; ++i) {
    bins[static_cast<std::size_t>(rng.uniform01() * 16.0)]++;
  }
  const double expected = n / 16.0;
  double chi2 = 0.0;
  for (const int count : bins) {
    const double d = count - expected;
    chi2 += d * d / expected;
  }
  // 15 dof: 99.9th percentile is ~37.7.
  EXPECT_LT(chi2, 37.7);
}

}  // namespace
}  // namespace saim::util
