// Tests for the sharded serving front door: the consistent-hash ring and
// ShardRouter logic (no processes), the ProcessChild pipe wrapper (driven
// with /bin/cat), and — when the build provides SAIM_SERVE_BIN — the real
// thing: saim_serve children under the shared pump, including the
// failover contract of ISSUE 4: kill a child mid-stream and every
// accepted job still produces exactly one result or error line with a
// correct global seq. Also pins the serving-protocol guarantees the
// router depends on: rejected lines consume no seq, ping answers
// mid-stream, drain certifies the past.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <chrono>
#include <csignal>
#include <deque>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "service/process_child.hpp"
#include "service/shard_driver.hpp"
#include "service/shard_router.hpp"
#include "util/jsonl.hpp"

namespace saim::service {
namespace {

// ------------------------------------------------------------------- ring

TEST(HashRing, RoutesEveryKeyAndUsesEveryShard) {
  HashRing ring(64);
  for (std::size_t s = 0; s < 4; ++s) ring.add(s);
  std::set<std::size_t> used;
  for (std::uint64_t k = 0; k < 4096; ++k) {
    const std::size_t shard = ring.route(k * 0x9e3779b97f4a7c15ULL);
    ASSERT_LT(shard, 4u);
    used.insert(shard);
  }
  EXPECT_EQ(used.size(), 4u);  // 64 vnodes/shard: all shards get traffic
}

TEST(HashRing, RoutingIsDeterministic) {
  HashRing a(32), b(32);
  for (std::size_t s = 0; s < 3; ++s) {
    a.add(s);
    b.add(s);
  }
  for (std::uint64_t k = 1; k < 100; ++k) {
    EXPECT_EQ(a.route(k * 7919), b.route(k * 7919));
  }
}

TEST(HashRing, RemovalOnlyRemapsTheDeadShardsKeys) {
  HashRing ring(64);
  for (std::size_t s = 0; s < 4; ++s) ring.add(s);
  std::map<std::uint64_t, std::size_t> before;
  for (std::uint64_t k = 0; k < 2048; ++k) {
    const std::uint64_t key = k * 0x9e3779b97f4a7c15ULL;
    before[key] = ring.route(key);
  }
  ring.remove(2);
  for (const auto& [key, owner] : before) {
    const std::size_t now = ring.route(key);
    if (owner != 2) {
      EXPECT_EQ(now, owner) << "consistent hashing must not move keys of "
                               "surviving shards";
    } else {
      EXPECT_NE(now, 2u);
    }
  }
}

TEST(HashRing, EmptyRingThrows) {
  HashRing ring;
  EXPECT_THROW((void)ring.route(1), std::runtime_error);
  ring.add(0);
  EXPECT_EQ(ring.route(1), 0u);
  ring.remove(0);
  EXPECT_THROW((void)ring.route(1), std::runtime_error);
}

// -------------------------------------------------- router (no processes)

/// A valid gen job line. Small instances keep fingerprinting cheap.
std::string job_line(const std::string& id, int k, std::uint64_t seed) {
  return "{\"id\":\"" + id + "\",\"gen\":\"qkp:30-25-" + std::to_string(k) +
         "\",\"iterations\":2,\"sweeps\":20,\"seed\":" + std::to_string(seed) +
         "}";
}

/// Extracts the token the router assigned (the rewritten line's id).
std::string token_of(const std::string& rewritten) {
  const auto v = util::parse_json(rewritten);
  return v.find("id")->as_string();
}

/// Fakes a child's accepted-result line for `token` with per-shard `seq`.
std::string fake_result(const std::string& token, std::int64_t shard_seq) {
  return "{\"id\":\"" + token +
         "\",\"status\":\"completed\",\"best_cost\":-12.5,\"seq\":" +
         std::to_string(shard_seq) + "}";
}

RouterOptions two_shards(std::size_t window = 8) {
  RouterOptions options;
  options.shards = 2;
  options.window = window;
  return options;
}

TEST(ShardRouter, SameInstanceAlwaysRoutesToOneShard) {
  ShardRouter router(two_shards());
  EXPECT_TRUE(router.accept_line(job_line("a", 1, 1), 1).empty());
  EXPECT_TRUE(router.accept_line(job_line("b", 1, 2), 2).empty());
  EXPECT_TRUE(router.accept_line(job_line("c", 1, 3), 3).empty());
  const std::size_t owner = router.pending(0) == 3 ? 0 : 1;
  EXPECT_EQ(router.pending(owner), 3u) << "instance twins must share a "
                                          "shard for cache locality";
  EXPECT_EQ(router.pending(1 - owner), 0u);
}

TEST(ShardRouter, RejectsBadLinesLocallyWithoutSeq) {
  ShardRouter router(two_shards());
  const auto bad_json = router.accept_line("{nope", 1);
  ASSERT_EQ(bad_json.size(), 1u);
  EXPECT_EQ(util::parse_json(bad_json[0]).find("seq"), nullptr);
  EXPECT_NE(util::parse_json(bad_json[0]).find("error"), nullptr);
  EXPECT_EQ(util::parse_json(bad_json[0]).find("id")->as_string(), "job1");

  // Same rejection (and error text) the shard's own parser would produce.
  const auto bad_field =
      router.accept_line(R"({"id":"x","gen":"qkp:30-25-1","oops":1})", 2);
  ASSERT_EQ(bad_field.size(), 1u);
  EXPECT_NE(util::parse_json(bad_field[0])
                .find("error")
                ->as_string()
                .find("unknown job field"),
            std::string::npos);
  EXPECT_TRUE(router.any_error());
  EXPECT_EQ(router.stats().rejected, 2u);
  EXPECT_TRUE(router.idle());
}

TEST(ShardRouter, InstanceTwinsAreStillFieldValidatedOnMemoHits) {
  ShardRouter router(two_shards());
  // First line builds (and memoizes) the instance; the invalid twin hits
  // the memo but must STILL be rejected locally, exactly as the shard's
  // parser would — stats stay truthful.
  EXPECT_TRUE(router.accept_line(job_line("a", 1, 1), 1).empty());
  const auto out = router.accept_line(
      R"({"id":"twin","gen":"qkp:30-25-1","sweeps":-5})", 2);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(util::parse_json(out[0])
                .find("error")
                ->as_string()
                .find("nonnegative integer"),
            std::string::npos);
  EXPECT_EQ(router.stats().accepted, 1u);
  EXPECT_EQ(router.stats().rejected, 1u);
}

TEST(ShardRouter, WindowBoundsInflightAndRemapsSeqInCompletionOrder) {
  ShardRouter router(two_shards(/*window=*/2));
  for (int j = 0; j < 5; ++j) {
    router.accept_line(job_line("j" + std::to_string(j), 1, j + 1),
                       static_cast<std::size_t>(j + 1));
  }
  const std::size_t owner = router.pending(0) ? 0 : 1;
  auto first = router.take_sendable(owner);
  ASSERT_EQ(first.size(), 2u) << "window must cap in-flight jobs";
  EXPECT_EQ(router.inflight(owner), 2u);
  EXPECT_EQ(router.pending(owner), 3u);
  EXPECT_TRUE(router.take_sendable(owner).empty());

  // Child answers out of submission order, with ITS seq numbers; the
  // router reassigns the global order and frees window slots.
  auto out = router.on_child_line(owner, fake_result(token_of(first[1]), 0));
  ASSERT_EQ(out.size(), 1u);
  const auto line1 = util::parse_json(out[0]);
  EXPECT_EQ(line1.find("id")->as_string(), "j1");
  EXPECT_EQ(line1.find("seq")->as_int(), 0);
  EXPECT_DOUBLE_EQ(line1.find("best_cost")->as_double(), -12.5);

  out = router.on_child_line(owner, fake_result(token_of(first[0]), 1));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(util::parse_json(out[0]).find("id")->as_string(), "j0");
  EXPECT_EQ(util::parse_json(out[0]).find("seq")->as_int(), 1);

  auto second = router.take_sendable(owner);
  EXPECT_EQ(second.size(), 2u);
  EXPECT_EQ(router.pending(owner), 1u);
}

TEST(ShardRouter, ChildRejectedLinesKeepNoSeq) {
  ShardRouter router(two_shards());
  router.accept_line(job_line("a", 1, 1), 1);
  const std::size_t owner = router.pending(0) ? 0 : 1;
  const auto sent = router.take_sendable(owner);
  ASSERT_EQ(sent.size(), 1u);
  // The child rejected the job at submission: error line, no seq.
  const auto out = router.on_child_line(
      owner, "{\"id\":\"" + token_of(sent[0]) + "\",\"error\":\"boom\"}");
  ASSERT_EQ(out.size(), 1u);
  const auto line = util::parse_json(out[0]);
  EXPECT_EQ(line.find("id")->as_string(), "a");
  EXPECT_EQ(line.find("seq"), nullptr);
  EXPECT_TRUE(router.any_error());

  // The next ACCEPTED job still starts the global order at 0.
  router.accept_line(job_line("b", 1, 2), 2);
  const auto sent2 = router.take_sendable(owner);
  const auto out2 =
      router.on_child_line(owner, fake_result(token_of(sent2[0]), 5));
  EXPECT_EQ(util::parse_json(out2[0]).find("seq")->as_int(), 0);
}

TEST(ShardRouter, DuplicateClientIdsDoNotCollide) {
  ShardRouter router(two_shards());
  router.accept_line(job_line("same", 1, 1), 1);
  router.accept_line(job_line("same", 1, 2), 2);
  const std::size_t owner = router.pending(0) ? 0 : 1;
  const auto sent = router.take_sendable(owner);
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_NE(token_of(sent[0]), token_of(sent[1]));
  const auto out0 = router.on_child_line(owner, fake_result(token_of(sent[0]), 0));
  const auto out1 = router.on_child_line(owner, fake_result(token_of(sent[1]), 1));
  EXPECT_EQ(util::parse_json(out0[0]).find("id")->as_string(), "same");
  EXPECT_EQ(util::parse_json(out1[0]).find("id")->as_string(), "same");
  EXPECT_TRUE(router.idle());
}

TEST(ShardRouter, ChildDownRequeuesEveryUnansweredJobToSurvivors) {
  ShardRouter router(two_shards(/*window=*/2));
  // Spread jobs over many instances so both shards own some.
  for (int k = 1; k <= 8; ++k) {
    router.accept_line(job_line("k" + std::to_string(k), k, 1),
                       static_cast<std::size_t>(k));
  }
  ASSERT_GT(router.pending(0) + router.inflight(0), 0u);
  ASSERT_GT(router.pending(1) + router.inflight(1), 0u);
  (void)router.take_sendable(0);  // some in flight, some pending
  std::vector<std::string> survivor_inflight = router.take_sendable(1);

  const std::size_t dead = 0;
  const std::size_t before =
      router.pending(dead) + router.inflight(dead);
  const auto orphan_lines = router.on_child_down(dead);
  EXPECT_TRUE(orphan_lines.empty()) << "a survivor exists: no job may error";
  EXPECT_FALSE(router.alive(dead));
  EXPECT_EQ(router.stats().requeued, before);
  EXPECT_EQ(router.pending(dead) + router.inflight(dead), 0u);
  EXPECT_EQ(router.outstanding(), 8u);

  // Everything now flows through the survivor — its own pre-kill
  // in-flight jobs plus everything requeued — each job exactly once.
  std::set<std::string> ids;
  std::set<std::int64_t> seqs;
  std::int64_t shard_seq = 0;
  std::deque<std::string> awaiting(survivor_inflight.begin(),
                                   survivor_inflight.end());
  while (!awaiting.empty()) {
    const auto out = router.on_child_line(
        1, fake_result(token_of(awaiting.front()), shard_seq++));
    awaiting.pop_front();
    ASSERT_EQ(out.size(), 1u);
    ids.insert(util::parse_json(out[0]).find("id")->as_string());
    seqs.insert(util::parse_json(out[0]).find("seq")->as_int());
    for (auto& line : router.take_sendable(1)) awaiting.push_back(line);
  }
  EXPECT_EQ(ids.size(), 8u);
  for (std::int64_t s = 0; s < 8; ++s) EXPECT_TRUE(seqs.contains(s));
  EXPECT_TRUE(router.idle());
}

TEST(ShardRouter, LastShardDownOrphansWithSeqAndShardField) {
  RouterOptions options;
  options.shards = 1;
  ShardRouter router(options);
  router.accept_line(job_line("a", 1, 1), 1);
  (void)router.take_sendable(0);
  const auto out = router.on_child_down(0);
  ASSERT_EQ(out.size(), 1u);
  const auto line = util::parse_json(out[0]);
  EXPECT_EQ(line.find("id")->as_string(), "a");
  EXPECT_NE(line.find("error"), nullptr);
  EXPECT_EQ(line.find("shard")->as_int(), 0);
  EXPECT_EQ(line.find("seq")->as_int(), 0);
  EXPECT_TRUE(router.idle());
  EXPECT_TRUE(router.any_error());
  EXPECT_EQ(router.stats().orphaned, 1u);

  // With the ring empty, new jobs are rejected, not stranded.
  const auto rejected = router.accept_line(job_line("b", 1, 1), 2);
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_NE(util::parse_json(rejected[0]).find("error"), nullptr);
}

TEST(ShardRouter, PingAnsweredLocallyAndDrainCertifiesThePast) {
  ShardRouter router(two_shards());
  const auto pong = router.accept_line(R"({"cmd":"ping","id":"hb"})", 1);
  ASSERT_EQ(pong.size(), 1u);
  EXPECT_TRUE(util::parse_json(pong[0]).find("pong")->as_bool());
  EXPECT_EQ(util::parse_json(pong[0]).find("id")->as_string(), "hb");

  router.accept_line(job_line("a", 1, 1), 2);
  EXPECT_TRUE(router.accept_line(R"({"cmd":"drain"})", 3).empty());
  router.accept_line(job_line("late", 1, 2), 4);  // after the barrier

  const std::size_t owner = router.pending(0) ? 0 : 1;
  auto sent = router.take_sendable(owner);
  ASSERT_EQ(sent.size(), 2u);
  // The post-drain job finishing does NOT release the barrier...
  auto out = router.on_child_line(owner, fake_result(token_of(sent[1]), 0));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(util::parse_json(out[0]).find("id")->as_string(), "late");
  // ...the pre-drain job finishing does.
  out = router.on_child_line(owner, fake_result(token_of(sent[0]), 1));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(util::parse_json(out[0]).find("id")->as_string(), "a");
  EXPECT_TRUE(util::parse_json(out[1]).find("drained")->as_bool());
  EXPECT_TRUE(router.idle());

  // Child pongs are consumed as health signals, never forwarded.
  EXPECT_FALSE(router.take_pong(owner));
  EXPECT_TRUE(router.on_child_line(owner, R"({"id":"x","pong":true})").empty());
  EXPECT_TRUE(router.take_pong(owner));
  EXPECT_FALSE(router.take_pong(owner));
}

// ------------------------------------------------- hedging and admission

RouterOptions hedged_two_shards() {
  RouterOptions options;
  options.shards = 2;
  options.window = 8;
  options.replicas = 2;
  options.hedge_min_ms = 0.01;  // tiny floor: a 1ms sleep is "stuck"
  return options;
}

/// Accepts one job, puts it in flight on its owner, waits past the hedge
/// floor and dispatches the hedge. Returns {owner, replica, token}.
std::tuple<std::size_t, std::size_t, std::string> hedge_one_job(
    ShardRouter& router) {
  EXPECT_TRUE(router.accept_line(job_line("a", 1, 1), 1).empty());
  const std::size_t owner = router.pending(0) ? 0 : 1;
  const auto sent = router.take_sendable(owner);
  EXPECT_EQ(sent.size(), 1u);
  const std::string token = token_of(sent[0]);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(router.dispatch_hedges(), 1u);
  EXPECT_EQ(router.dispatch_hedges(), 0u) << "at most one hedge per job";
  const std::size_t replica = 1 - owner;
  EXPECT_EQ(router.pending(replica), 1u);
  return {owner, replica, token};
}

TEST(ShardRouter, HedgeDedupesWhenThePrimaryAnswersFirst) {
  ShardRouter router(hedged_two_shards());
  const auto [owner, replica, token] = hedge_one_job(router);
  const auto hedge_sent = router.take_sendable(replica);
  ASSERT_EQ(hedge_sent.size(), 1u);
  EXPECT_EQ(token_of(hedge_sent[0]), token) << "hedge reuses the token";

  // The primary wins the race: one client line, the hedge copy's window
  // slot is released immediately, and the replica's late answer is
  // swallowed as a duplicate.
  const auto out = router.on_child_line(owner, fake_result(token, 0));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(util::parse_json(out[0]).find("id")->as_string(), "a");
  EXPECT_EQ(util::parse_json(out[0]).find("seq")->as_int(), 0);
  EXPECT_EQ(router.inflight(replica), 0u);
  EXPECT_TRUE(router.on_child_line(replica, fake_result(token, 0)).empty());
  EXPECT_TRUE(router.idle());
  EXPECT_EQ(router.stats().hedges, 1u);
  EXPECT_EQ(router.stats().hedge_wins, 0u);
  EXPECT_EQ(router.stats().emitted, 1u);
  EXPECT_FALSE(router.any_error());
}

TEST(ShardRouter, HedgeDedupesWhenTheReplicaAnswersFirst) {
  ShardRouter router(hedged_two_shards());
  const auto [owner, replica, token] = hedge_one_job(router);
  ASSERT_EQ(router.take_sendable(replica).size(), 1u);

  const auto out = router.on_child_line(replica, fake_result(token, 0));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(util::parse_json(out[0]).find("id")->as_string(), "a");
  EXPECT_EQ(util::parse_json(out[0]).find("seq")->as_int(), 0);
  EXPECT_EQ(router.stats().hedge_wins, 1u);
  EXPECT_EQ(router.hedge_win_snapshot().count, 1u);
  EXPECT_EQ(router.inflight(owner), 0u) << "the loser's slot is released";
  EXPECT_TRUE(router.on_child_line(owner, fake_result(token, 0)).empty());
  EXPECT_TRUE(router.idle());
  EXPECT_FALSE(router.any_error());
}

TEST(ShardRouter, HedgeIsPromotedWhenTheOwnerCrashes) {
  ShardRouter router(hedged_two_shards());
  const auto [owner, replica, token] = hedge_one_job(router);
  ASSERT_EQ(router.take_sendable(replica).size(), 1u);

  // The owner dies with the hedge copy already in flight on the replica:
  // the copy is promoted to primary — nothing is requeued or replayed,
  // the answer that was already being computed just lands.
  EXPECT_TRUE(router.on_child_down(owner).empty());
  EXPECT_FALSE(router.alive(owner));
  EXPECT_EQ(router.stats().requeued, 0u) << "promotion, not requeue";
  EXPECT_EQ(router.inflight(replica), 1u);

  const auto out = router.on_child_line(replica, fake_result(token, 0));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(util::parse_json(out[0]).find("id")->as_string(), "a");
  EXPECT_EQ(util::parse_json(out[0]).find("seq")->as_int(), 0);
  EXPECT_EQ(util::parse_json(out[0]).find("error"), nullptr);
  EXPECT_TRUE(router.idle());
  EXPECT_FALSE(router.any_error());
}

TEST(ShardRouter, HedgeShardCrashLeavesThePrimaryInFlight) {
  ShardRouter router(hedged_two_shards());
  const auto [owner, replica, token] = hedge_one_job(router);
  ASSERT_EQ(router.take_sendable(replica).size(), 1u);

  EXPECT_TRUE(router.on_child_down(replica).empty());
  EXPECT_EQ(router.inflight(owner), 1u) << "primary copy unaffected";
  // One live shard left: the ring cannot host a new hedge.
  EXPECT_EQ(router.dispatch_hedges(), 0u);
  const auto out = router.on_child_line(owner, fake_result(token, 0));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(util::parse_json(out[0]).find("id")->as_string(), "a");
  EXPECT_TRUE(router.idle());
}

TEST(ShardRouter, AdmissionControlShedsWithDelayedTagAndContiguousSeq) {
  RouterOptions options;
  options.shards = 1;
  options.window = 8;
  options.max_queue_depth = 2;
  ShardRouter router(options);

  auto prioritized = [](const std::string& id, int k, const char* band) {
    return "{\"id\":\"" + id + "\",\"gen\":\"qkp:30-25-" + std::to_string(k) +
           "\",\"iterations\":2,\"sweeps\":20,\"priority\":\"" + band + "\"}";
  };
  EXPECT_TRUE(router.accept_line(prioritized("lo", 1, "low"), 1).empty());
  EXPECT_TRUE(router.accept_line(prioritized("n1", 2, "normal"), 2).empty());

  // Backlog full; a high-priority arrival displaces the low-priority
  // victim, which WAS accepted and therefore keeps its seq.
  const auto displaced = router.accept_line(prioritized("hi", 3, "high"), 3);
  ASSERT_EQ(displaced.size(), 1u);
  const auto victim = util::parse_json(displaced[0]);
  EXPECT_EQ(victim.find("id")->as_string(), "lo");
  EXPECT_TRUE(victim.find("delayed")->as_bool());
  EXPECT_NE(victim.find("error")->as_string().find("admission control"),
            std::string::npos);
  EXPECT_EQ(victim.find("seq")->as_int(), 0);
  EXPECT_EQ(router.stats().sheds, 1u);
  EXPECT_EQ(router.outstanding(), 2u);

  // Backlog full again; a low-priority arrival outranks nobody, so IT is
  // shed — never accepted, so no ordinal and no seq.
  const auto bounced = router.accept_line(prioritized("lo2", 4, "low"), 4);
  ASSERT_EQ(bounced.size(), 1u);
  const auto shed = util::parse_json(bounced[0]);
  EXPECT_EQ(shed.find("id")->as_string(), "lo2");
  EXPECT_TRUE(shed.find("delayed")->as_bool());
  EXPECT_EQ(shed.find("seq"), nullptr);
  EXPECT_EQ(router.stats().sheds, 2u);

  // The surviving jobs complete with the next seqs: the client still sees
  // the contiguous global range 0..2 across shed and completed lines.
  const auto sent = router.take_sendable(0);
  ASSERT_EQ(sent.size(), 2u);
  std::set<std::int64_t> seqs{0};
  std::int64_t shard_seq = 0;
  for (const auto& line : sent) {
    const auto out =
        router.on_child_line(0, fake_result(token_of(line), shard_seq++));
    ASSERT_EQ(out.size(), 1u);
    seqs.insert(util::parse_json(out[0]).find("seq")->as_int());
  }
  for (std::int64_t s = 0; s < 3; ++s) EXPECT_TRUE(seqs.contains(s));
  EXPECT_TRUE(router.idle());
  EXPECT_TRUE(router.any_error());
}

TEST(ShardRouter, AdmissionControlNeverShedsInflightOrHedgedJobs) {
  RouterOptions options = hedged_two_shards();
  options.max_queue_depth = 1;
  ShardRouter router(options);
  const auto [owner, replica, token] = hedge_one_job(router);
  // The only outstanding job is in flight (and hedged): pending holds the
  // hedge copy, so the backlog reads full — but the job is untouchable,
  // and the incoming normal-priority arrival is shed instead.
  const auto out = router.accept_line(job_line("b", 2, 1), 9);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(util::parse_json(out[0]).find("id")->as_string(), "b");
  EXPECT_TRUE(util::parse_json(out[0]).find("delayed")->as_bool());
  EXPECT_EQ(router.outstanding(), 1u);
  ASSERT_EQ(router.take_sendable(replica).size(), 1u);
  EXPECT_EQ(router.on_child_line(owner, fake_result(token, 0)).size(), 1u);
  EXPECT_TRUE(router.idle());
}

TEST(ShardRouter, HotKeyTwinsRouteToTheLeastLoadedReplica) {
  RouterOptions options;
  options.shards = 2;
  options.window = 8;
  options.replicas = 2;
  options.hot_key_depth = 2;
  ShardRouter router(options);

  // Two jobs over one instance saturate the owner (depth 2 >= 2)...
  EXPECT_TRUE(router.accept_line(job_line("j0", 1, 1), 1).empty());
  EXPECT_TRUE(router.accept_line(job_line("j1", 1, 2), 2).empty());
  const std::size_t owner = router.pending(0) >= 2 ? 0 : 1;
  ASSERT_EQ(router.pending(owner), 2u);
  // ...so the next twin skips it for the idle replica.
  EXPECT_TRUE(router.accept_line(job_line("hot", 1, 9), 3).empty());
  EXPECT_EQ(router.pending(1 - owner), 1u);
  EXPECT_EQ(router.stats().replica_hits, 1u);
  // Once the replica is just as loaded, twins stay home: rerouting needs
  // a STRICTLY less-loaded replica.
  EXPECT_TRUE(router.accept_line(job_line("hot2", 1, 10), 4).empty());
  EXPECT_TRUE(router.accept_line(job_line("hot3", 1, 11), 5).empty());
  EXPECT_EQ(router.stats().replica_hits, 2u);
  EXPECT_EQ(router.pending(owner), 3u);
  EXPECT_EQ(router.pending(1 - owner), 2u);

  // A twin for a key whose owner is NOT saturated stays put.
  ShardRouter cold(options);
  EXPECT_TRUE(cold.accept_line(job_line("a", 1, 1), 1).empty());
  EXPECT_TRUE(cold.accept_line(job_line("b", 1, 2), 2).empty());
  EXPECT_EQ(cold.stats().replica_hits, 0u);
}

// ----------------------------------------------------------- ProcessChild

TEST(ProcessChild, EchoesLinesAndDrainsOnStdinClose) {
  ProcessChild cat({"/bin/cat"});
  cat.send_line("hello");
  cat.send_line("world");
  ASSERT_TRUE(cat.pump_writes());
  std::vector<std::string> lines;
  for (int spin = 0; spin < 2000 && lines.size() < 2; ++spin) {
    for (auto& l : cat.read_lines()) lines.push_back(l);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "hello");
  EXPECT_EQ(lines[1], "world");

  cat.close_stdin();
  for (int spin = 0; spin < 2000 && !cat.eof(); ++spin) {
    cat.read_lines();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(cat.eof());
  for (int spin = 0; spin < 2000 && cat.running(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(cat.running());
  EXPECT_EQ(cat.exit_status(), 0);
}

TEST(ProcessChild, KillLeadsToEofAndNonRunning) {
  ProcessChild cat({"/bin/cat"});
  ASSERT_TRUE(cat.running());
  cat.kill(SIGKILL);
  for (int spin = 0; spin < 2000 && (cat.running() || !cat.eof()); ++spin) {
    cat.read_lines();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(cat.eof());
  EXPECT_FALSE(cat.running());
}

TEST(ProcessChild, ExecFailureSurfacesAsExit127) {
  ProcessChild nope({"/definitely/not/a/binary"});
  for (int spin = 0; spin < 2000 && nope.running(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_FALSE(nope.running());
  ASSERT_TRUE(WIFEXITED(nope.exit_status()));
  EXPECT_EQ(WEXITSTATUS(nope.exit_status()), 127);
}

// --------------------------------------------- end-to-end with saim_serve

const char* serve_bin() {
#ifdef SAIM_SERVE_BIN
  return SAIM_SERVE_BIN;
#else
  return nullptr;
#endif
}

std::vector<std::unique_ptr<net::ShardEndpoint>> spawn_fleet(
    std::size_t shards) {
  std::vector<std::unique_ptr<net::ShardEndpoint>> children;
  for (std::size_t s = 0; s < shards; ++s) {
    children.push_back(std::make_unique<ProcessChild>(
        std::vector<std::string>{serve_bin(), "--stream", "--workers", "1",
                                 "--cache", "0"}));
  }
  return children;
}

/// Pumps until the router is idle or ~20s pass; returns emitted lines.
std::vector<std::string> pump_to_idle(
    ShardRouter& router,
    std::vector<std::unique_ptr<net::ShardEndpoint>>& children) {
  std::vector<std::string> out;
  for (int spin = 0; spin < 10000 && !router.idle(); ++spin) {
    for (auto& l : pump_shards(router, children, 2)) out.push_back(std::move(l));
  }
  return out;
}

TEST(ShardFleet, MatchesAcceptedJobContractEndToEnd) {
  if (!serve_bin()) GTEST_SKIP() << "saim_serve not built";
  auto children = spawn_fleet(2);
  ShardRouter router(two_shards());
  std::size_t line_no = 0;
  std::vector<std::string> out;
  for (int k = 1; k <= 3; ++k) {
    for (int j = 0; j < 2; ++j) {
      const auto id = "k" + std::to_string(k) + "j" + std::to_string(j);
      for (auto& l : router.accept_line(
               "{\"id\":\"" + id + "\",\"gen\":\"qkp:30-25-" +
                   std::to_string(k) + "\",\"iterations\":3,\"sweeps\":50," +
                   "\"seed\":" + std::to_string(j + 1) + "}",
               ++line_no)) {
        out.push_back(std::move(l));
      }
    }
  }
  // One rejected line: must produce an error with NO seq and skew nothing.
  for (auto& l : router.accept_line(R"({"id":"bad","gen":"zzz"})", ++line_no)) {
    out.push_back(std::move(l));
  }
  for (auto& l : pump_to_idle(router, children)) out.push_back(std::move(l));

  ASSERT_EQ(out.size(), 7u);
  std::set<std::string> ids;
  std::set<std::int64_t> seqs;
  for (const auto& line : out) {
    const auto v = util::parse_json(line);
    ids.insert(v.find("id")->as_string());
    if (v.find("id")->as_string() == "bad") {
      EXPECT_NE(v.find("error"), nullptr);
      EXPECT_EQ(v.find("seq"), nullptr);
    } else {
      EXPECT_EQ(v.find("status")->as_string(), "completed");
      seqs.insert(v.find("seq")->as_int());
    }
  }
  EXPECT_EQ(ids.size(), 7u);
  for (std::int64_t s = 0; s < 6; ++s) EXPECT_TRUE(seqs.contains(s));
}

TEST(ShardFleet, SurvivesChildKilledMidStreamWithZeroLostJobs) {
  if (!serve_bin()) GTEST_SKIP() << "saim_serve not built";
  auto children = spawn_fleet(2);
  ShardRouter router(two_shards(/*window=*/4));
  // Enough distinct instances that both shards own several jobs, with
  // budgets big enough that the victim cannot finish before the kill.
  std::size_t line_no = 0;
  for (int k = 1; k <= 6; ++k) {
    for (int j = 0; j < 2; ++j) {
      router.accept_line(
          "{\"id\":\"k" + std::to_string(k) + "j" + std::to_string(j) +
              "\",\"gen\":\"qkp:60-25-" + std::to_string(k) +
              "\",\"iterations\":25,\"sweeps\":300,\"seed\":" +
              std::to_string(j + 1) + "}",
          ++line_no);
    }
  }
  ASSERT_GT(router.pending(0), 0u);
  ASSERT_GT(router.pending(1), 0u);

  std::vector<std::string> out;
  // Let the fleet pick up work and prove it is mid-stream (some results
  // already emitted), then kill whichever shard has more unanswered jobs
  // — in flight and all.
  for (int spin = 0; spin < 5000 && out.size() < 2; ++spin) {
    for (auto& l : pump_shards(router, children, 2)) out.push_back(std::move(l));
  }
  ASSERT_GE(out.size(), 2u);
  const std::size_t victim =
      router.inflight(0) + router.pending(0) >=
              router.inflight(1) + router.pending(1)
          ? 0
          : 1;
  ASSERT_GT(router.inflight(victim) + router.pending(victim), 0u);
  children[victim]->terminate();  // SIGKILL via the endpoint interface

  for (auto& l : pump_to_idle(router, children)) out.push_back(std::move(l));

  // Exactly one line per accepted job, global seq contiguous, no errors.
  ASSERT_EQ(out.size(), 12u);
  std::set<std::string> ids;
  std::set<std::int64_t> seqs;
  for (const auto& line : out) {
    const auto v = util::parse_json(line);
    ids.insert(v.find("id")->as_string());
    EXPECT_EQ(v.find("error"), nullptr) << line;
    ASSERT_NE(v.find("seq"), nullptr) << line;
    seqs.insert(v.find("seq")->as_int());
  }
  EXPECT_EQ(ids.size(), 12u);
  for (std::int64_t s = 0; s < 12; ++s) EXPECT_TRUE(seqs.contains(s));
  EXPECT_FALSE(router.alive(victim));
  EXPECT_GT(router.stats().requeued, 0u);
  EXPECT_FALSE(router.any_error());
}

TEST(ShardFleet, ServeAnswersPingMidStreamAndSkipsSeqForRejects) {
  if (!serve_bin()) GTEST_SKIP() << "saim_serve not built";
  // Drive ONE saim_serve directly to pin the protocol contract the
  // router builds on (ISSUE 4 satellite: rejected lines must not consume
  // completion-order sequence numbers).
  ProcessChild serve(std::vector<std::string>{serve_bin(), "--stream",
                                              "--workers", "1"});
  serve.send_line(R"({"id":"good1","gen":"qkp:30-25-1","iterations":2,"sweeps":20})");
  serve.send_line(R"({"id":"bad","gen":"qkp:30-25-1","typo_field":1})");
  serve.send_line(R"({"cmd":"ping","id":"hb"})");
  serve.send_line(R"({"id":"good2","gen":"qkp:30-25-2","iterations":2,"sweeps":20})");
  serve.send_line(R"({"cmd":"drain","id":"barrier"})");
  ASSERT_TRUE(serve.pump_writes());
  serve.close_stdin();

  std::vector<std::string> lines;
  for (int spin = 0; spin < 10000 && !serve.eof(); ++spin) {
    for (auto& l : serve.read_lines()) lines.push_back(std::move(l));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& l : serve.read_lines()) lines.push_back(std::move(l));

  ASSERT_EQ(lines.size(), 5u);
  std::map<std::string, util::JsonValue> by_id;
  std::vector<std::string> order;
  for (const auto& line : lines) {
    auto v = util::parse_json(line);
    order.push_back(v.find("id")->as_string());
    by_id.emplace(v.find("id")->as_string(), std::move(v));
  }
  EXPECT_TRUE(by_id.at("hb").find("pong")->as_bool());
  EXPECT_EQ(by_id.at("hb").find("seq"), nullptr);
  EXPECT_NE(by_id.at("bad").find("error"), nullptr);
  EXPECT_EQ(by_id.at("bad").find("seq"), nullptr) << "rejected lines must "
                                                     "not consume seq";
  std::set<std::int64_t> seqs{by_id.at("good1").find("seq")->as_int(),
                              by_id.at("good2").find("seq")->as_int()};
  EXPECT_TRUE(seqs.contains(0));
  EXPECT_TRUE(seqs.contains(1));
  EXPECT_TRUE(by_id.at("barrier").find("drained")->as_bool());
  // The drain barrier acknowledges only after both accepted jobs emitted.
  EXPECT_EQ(order.back(), "barrier");
}

}  // namespace
}  // namespace saim::service
