// In-process tests for service::EventServer (the event-driven --listen
// front door): round-trip + graceful shutdown exit code, the global
// connection cap's fail-fast reject, the fail-closed auth deadline, the
// idle timeout, and slow-reader backpressure (bounded outbound queue
// that pauses reading, then drains completely). Every case runs on both
// reactor backends — epoll and the portable poll fallback.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/event_server.hpp"
#include "service/solve_service.hpp"
#include "util/jsonl.hpp"

namespace saim::service {
namespace {

using namespace std::chrono_literals;

/// Blocking TCP client with a receive timeout — the test-side peer.
class BlockingClient {
 public:
  explicit BlockingClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    timeval tv{10, 0};  // nothing in these tests legitimately takes 10 s
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0)
        << std::strerror(errno);
  }
  ~BlockingClient() { close(); }
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void send_line(const std::string& line) {
    const std::string framed = line + "\n";
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n =
          ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << std::strerror(errno);
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Next full line; false on EOF or receive timeout.
  bool read_line(std::string& line) {
    for (;;) {
      const auto pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        line = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// True when the peer half is closed: recv returns 0 within the
  /// receive timeout without delivering any byte first.
  bool reads_eof_with_no_data() {
    char byte;
    const ssize_t n = ::recv(fd_, &byte, 1, 0);
    return n == 0;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// One EventServer on its own thread; joins (and checks the exit code)
/// on destruction.
class ServerFixture {
 public:
  explicit ServerFixture(EventServerOptions options, int workers = 1) {
    ServiceOptions service_options;
    service_options.workers = workers;
    service_ = std::make_unique<SolveService>(service_options);
    server_ = std::make_unique<EventServer>(*service_, std::move(options));
    thread_ = std::thread([this] { exit_code_ = server_->run(); });
  }
  ~ServerFixture() {
    if (thread_.joinable()) {
      server_->stop();
      thread_.join();
    }
  }

  [[nodiscard]] int port() const { return server_->port(); }
  [[nodiscard]] EventServer& server() { return *server_; }

  /// Joins the server thread (run() must return on its own — e.g. after
  /// a {"cmd":"shutdown"}) and returns its exit code.
  int join() {
    thread_.join();
    return exit_code_;
  }

  /// Spins until `predicate(counters())` holds or ~5 s pass.
  template <typename Predicate>
  bool wait_for(Predicate predicate) {
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (std::chrono::steady_clock::now() < deadline) {
      if (predicate(server_->counters())) return true;
      std::this_thread::sleep_for(2ms);
    }
    return predicate(server_->counters());
  }

 private:
  std::unique_ptr<SolveService> service_;
  std::unique_ptr<EventServer> server_;
  std::thread thread_;
  int exit_code_ = -1;
};

class EventServerTest : public ::testing::TestWithParam<bool> {
 protected:
  EventServerOptions base_options() {
    EventServerOptions options;
    options.session.stream = true;  // replies as they finish
    options.force_poll = GetParam();
    return options;
  }
};

std::string job_line(const std::string& id, std::uint64_t seed) {
  return "{\"id\":\"" + id +
         "\",\"gen\":\"qkp:30-25-1\",\"iterations\":1,\"sweeps\":10,"
         "\"seed\":" + std::to_string(seed) + "}";
}

TEST_P(EventServerTest, RoundTripThenShutdownExitsZero) {
  ServerFixture fixture(base_options());
  BlockingClient client(fixture.port());

  client.send_line(R"({"cmd":"ping","id":"p0"})");
  std::string line;
  ASSERT_TRUE(client.read_line(line));
  util::JsonValue pong = util::parse_json(line);
  EXPECT_TRUE(pong.find("pong"));
  EXPECT_EQ(pong.find("id")->as_string(), "p0");

  client.send_line(job_line("j0", 7));
  ASSERT_TRUE(client.read_line(line));
  util::JsonValue result = util::parse_json(line);
  ASSERT_TRUE(result.find("status")) << line;
  EXPECT_EQ(result.find("status")->as_string(), "completed");
  EXPECT_EQ(result.find("id")->as_string(), "j0");

  client.send_line(R"({"id":"end","cmd":"shutdown"})");
  ASSERT_TRUE(client.read_line(line));
  EXPECT_NE(line.find("\"bye\":true"), std::string::npos) << line;
  EXPECT_TRUE(client.reads_eof_with_no_data());
  EXPECT_EQ(fixture.join(), 0);
}

TEST_P(EventServerTest, ConnectionCapRejectsFailFast) {
  EventServerOptions options = base_options();
  options.max_connections = 1;
  ServerFixture fixture(options);

  BlockingClient first(fixture.port());
  first.send_line(R"({"cmd":"ping","id":"warm"})");
  std::string line;
  ASSERT_TRUE(first.read_line(line)) << "first connection must be served";

  BlockingClient second(fixture.port());
  // The reject writes NOTHING: the first read must be a clean EOF.
  EXPECT_TRUE(second.reads_eof_with_no_data());
  EXPECT_TRUE(fixture.wait_for([](const EventServer::Counters& c) {
    return c.rejected >= 1 && c.open == 1;
  }));
  const auto counters = fixture.server().counters();
  EXPECT_EQ(counters.accepted, 1u) << "a rejected connection is not accepted";

  // The surviving session is unaffected by its neighbour's reject.
  first.send_line(R"({"cmd":"ping","id":"still"})");
  ASSERT_TRUE(first.read_line(line));
  EXPECT_NE(line.find("\"still\""), std::string::npos);
}

TEST_P(EventServerTest, AuthDeadlineDropsSilentConnections) {
  EventServerOptions options = base_options();
  options.auth_token = "sesame";
  options.auth_timeout_ms = 50;
  ServerFixture fixture(options);

  BlockingClient silent(fixture.port());
  // Fail closed: no token within the deadline -> EOF, nothing written.
  EXPECT_TRUE(silent.reads_eof_with_no_data());
  EXPECT_TRUE(fixture.wait_for(
      [](const EventServer::Counters& c) { return c.timed_out >= 1; }));

  // A prompt, correct handshake still gets in afterwards.
  BlockingClient polite(fixture.port());
  polite.send_line(R"({"auth":"sesame"})");
  polite.send_line(R"({"cmd":"ping","id":"in"})");
  std::string line;
  ASSERT_TRUE(polite.read_line(line));
  EXPECT_NE(line.find("\"pong\""), std::string::npos) << line;
}

TEST_P(EventServerTest, WrongTokenClosesUnserved) {
  EventServerOptions options = base_options();
  options.auth_token = "sesame";
  ServerFixture fixture(options);

  BlockingClient wrong(fixture.port());
  wrong.send_line(R"({"auth":"open says me"})");
  EXPECT_TRUE(wrong.reads_eof_with_no_data())
      << "a bad token must close the connection without a reply";
  EXPECT_TRUE(fixture.wait_for(
      [](const EventServer::Counters& c) { return c.open == 0; }));
}

TEST_P(EventServerTest, IdleTimeoutDropsQuietConnections) {
  EventServerOptions options = base_options();
  options.idle_timeout_ms = 50;
  ServerFixture fixture(options);

  BlockingClient quiet(fixture.port());
  EXPECT_TRUE(quiet.reads_eof_with_no_data());
  EXPECT_TRUE(fixture.wait_for([](const EventServer::Counters& c) {
    return c.timed_out >= 1 && c.open == 0;
  }));
}

TEST_P(EventServerTest, SlowReaderHitsBackpressureThenDrainsFully) {
  EventServerOptions options = base_options();
  // A tiny bound so a handful of pong echoes trips the pause.
  options.outbound_limit_bytes = 1024;
  ServerFixture fixture(options);
  BlockingClient client(fixture.port());

  // ~60 KB of pings with fat ids, sent while this client reads nothing.
  // Well under one side's kernel socket buffering, so the blocking
  // sends cannot deadlock against the paused server.
  constexpr int kPings = 100;
  const std::string padding(512, 'x');
  for (int i = 0; i < kPings; ++i) {
    client.send_line("{\"cmd\":\"ping\",\"id\":\"bp" + std::to_string(i) +
                     "-" + padding + "\"}");
  }

  EXPECT_TRUE(fixture.wait_for([](const EventServer::Counters& c) {
    return c.backpressure_pauses >= 1;
  })) << "a 1 KiB outbound bound must pause against an unread 60 KB echo";

  // Backpressure pauses intake; it must not drop anything. Once this
  // side drains, every ping is answered, in order.
  std::string line;
  for (int i = 0; i < kPings; ++i) {
    ASSERT_TRUE(client.read_line(line)) << "missing pong " << i;
    EXPECT_NE(line.find("\"bp" + std::to_string(i) + "-"), std::string::npos)
        << "out of order at " << i << ": " << line;
  }

  client.send_line(R"({"id":"end","cmd":"shutdown"})");
  ASSERT_TRUE(client.read_line(line));
  EXPECT_NE(line.find("\"bye\":true"), std::string::npos);
  EXPECT_EQ(fixture.join(), 0);
}

INSTANTIATE_TEST_SUITE_P(Backends, EventServerTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "poll" : "epoll";
                         });

}  // namespace
}  // namespace saim::service
