#include <gtest/gtest.h>

#include <cmath>

#include "core/multi_start.hpp"
#include "core/penalty_method.hpp"
#include "exact/exhaustive.hpp"
#include "pbit/diagnostics.hpp"
#include "problems/qkp.hpp"

namespace saim {
namespace {

core::BackendFactory pbit_factory(std::size_t sweeps = 200) {
  return [sweeps] {
    return std::make_unique<anneal::PBitBackend>(
        pbit::Schedule::linear(10.0), sweeps);
  };
}

TEST(MultiStart, AggregatesAcrossRestarts) {
  const auto inst = problems::make_paper_qkp(12, 50, 9);
  const auto mapping = problems::qkp_to_problem(inst);
  core::SaimOptions opts;
  opts.iterations = 40;
  opts.eta = 20.0;
  core::MultiStartOptions multi;
  multi.restarts = 4;
  multi.seed = 7;
  const auto result = core::multi_start_saim(
      mapping.problem, pbit_factory(), opts, multi,
      core::make_qkp_evaluator(inst));
  EXPECT_EQ(result.total_sweeps, 4u * 40u * 200u);
  ASSERT_TRUE(result.any_feasible());
  EXPECT_EQ(result.restart_best_costs.count(), result.feasible_restarts);
  EXPECT_DOUBLE_EQ(result.best.best_cost, result.restart_best_costs.min());
}

TEST(MultiStart, BestRestartNeverWorseThanSingle) {
  const auto inst = problems::make_paper_qkp(12, 25, 3);
  const auto mapping = problems::qkp_to_problem(inst);
  core::SaimOptions opts;
  opts.iterations = 30;
  opts.eta = 20.0;

  core::MultiStartOptions one;
  one.restarts = 1;
  one.seed = 5;
  const auto single = core::multi_start_saim(mapping.problem, pbit_factory(),
                                             opts, one,
                                             core::make_qkp_evaluator(inst));
  core::MultiStartOptions many;
  many.restarts = 6;
  many.seed = 5;  // restart 0 identical to `single`
  const auto multi = core::multi_start_saim(mapping.problem, pbit_factory(),
                                            opts, many,
                                            core::make_qkp_evaluator(inst));
  ASSERT_TRUE(single.any_feasible());
  ASSERT_TRUE(multi.any_feasible());
  EXPECT_LE(multi.best.best_cost, single.best.best_cost);
}

TEST(MultiStart, DeterministicGivenMasterSeed) {
  const auto inst = problems::make_paper_qkp(10, 50, 2);
  const auto mapping = problems::qkp_to_problem(inst);
  core::SaimOptions opts;
  opts.iterations = 25;
  opts.eta = 20.0;
  core::MultiStartOptions multi;
  multi.restarts = 3;
  multi.seed = 99;
  const auto a = core::multi_start_saim(mapping.problem, pbit_factory(),
                                        opts, multi,
                                        core::make_qkp_evaluator(inst));
  const auto b = core::multi_start_saim(mapping.problem, pbit_factory(),
                                        opts, multi,
                                        core::make_qkp_evaluator(inst));
  EXPECT_EQ(a.best.best_cost, b.best.best_cost);
  EXPECT_EQ(a.best_restart, b.best_restart);
}

TEST(MultiStart, InvalidArgumentsThrow) {
  const auto inst = problems::make_paper_qkp(10, 50, 2);
  const auto mapping = problems::qkp_to_problem(inst);
  core::SaimOptions opts;
  core::MultiStartOptions zero;
  zero.restarts = 0;
  EXPECT_THROW(core::multi_start_saim(mapping.problem, pbit_factory(), opts,
                                      zero),
               std::invalid_argument);
  core::MultiStartOptions ok;
  EXPECT_THROW(core::multi_start_saim(mapping.problem, nullptr, opts, ok),
               std::invalid_argument);
}

TEST(Diagnostics, MagnetizationBasics) {
  EXPECT_DOUBLE_EQ(pbit::magnetization(ising::Spins{1, 1, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(pbit::magnetization(ising::Spins{1, -1, 1, -1}), 0.0);
  EXPECT_DOUBLE_EQ(pbit::magnetization(ising::Spins{}), 0.0);
}

TEST(Diagnostics, AutocorrelationOfConstantIsZeroByConvention) {
  const std::vector<double> flat(50, 3.0);
  EXPECT_DOUBLE_EQ(pbit::autocorrelation(flat, 1), 0.0);
  EXPECT_DOUBLE_EQ(pbit::integrated_autocorrelation_time(flat), 1.0);
}

TEST(Diagnostics, AutocorrelationLagZeroIsOne) {
  std::vector<double> series;
  for (int i = 0; i < 100; ++i) series.push_back(std::sin(0.3 * i));
  EXPECT_NEAR(pbit::autocorrelation(series, 0), 1.0, 1e-12);
}

TEST(Diagnostics, AlternatingSeriesHasNegativeLagOneCorrelation) {
  std::vector<double> series;
  for (int i = 0; i < 200; ++i) series.push_back(i % 2 ? 1.0 : -1.0);
  EXPECT_LT(pbit::autocorrelation(series, 1), -0.9);
}

TEST(Diagnostics, PersistentSeriesHasLargerTauThanNoise) {
  // Strongly autocorrelated AR(1) vs white noise: tau must rank them.
  util::Xoshiro256pp rng(3);
  std::vector<double> ar1;
  std::vector<double> white;
  double state = 0.0;
  for (int i = 0; i < 2000; ++i) {
    state = 0.95 * state + rng.uniform_sym();
    ar1.push_back(state);
    white.push_back(rng.uniform_sym());
  }
  const double tau_ar1 = pbit::integrated_autocorrelation_time(ar1);
  const double tau_white = pbit::integrated_autocorrelation_time(white);
  EXPECT_GT(tau_ar1, 5.0 * tau_white);
  EXPECT_NEAR(tau_white, 1.0, 0.5);
}

TEST(Diagnostics, EquilibrationReportOnSmallFerromagnet) {
  ising::IsingModel model(6);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) model.add_coupling(i, j, 1.0);
  }
  pbit::PBitMachine machine(model);
  util::Xoshiro256pp rng(7);
  const auto report =
      pbit::diagnose_equilibration(machine, model, 2.0, 500, 2000, rng);
  EXPECT_EQ(report.energy_trace.size(), 2000u);
  EXPECT_GE(report.tau, 1.0);
  // At beta=2 this ferromagnet is deep in the ordered phase.
  EXPECT_GT(report.mean_abs_magnetization, 0.9);
  EXPECT_LT(report.mean_energy, -10.0);
}

}  // namespace
}  // namespace saim
