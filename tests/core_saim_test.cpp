#include "core/saim_solver.hpp"

#include <gtest/gtest.h>

#include "core/params.hpp"
#include "core/penalty_method.hpp"
#include "exact/exhaustive.hpp"
#include "problems/qkp.hpp"

namespace saim::core {
namespace {

using problems::ConstrainedProblem;
using problems::LinearConstraint;

// The paper's Fig. 2 toy: min f(x) s.t. x = 2, with x a 2-bit integer
// x = x0 + 2 x1 and f chosen so the unconstrained minimum is x = 3.
// With a small P < P_C the penalty method alone lands on the unfeasible
// minimum; the Lagrange term must shape the landscape until x = 2 wins.
ConstrainedProblem fig2_toy() {
  ising::QuboModel f(2);
  // f(x) = -(x0 + 2 x1): strictly decreasing in x, min at x=3.
  f.add_linear(0, -1.0);
  f.add_linear(1, -2.0);
  LinearConstraint g;  // x0 + 2 x1 - 2 = 0
  g.terms = {{0, 1.0}, {1, 2.0}};
  g.rhs = 2.0;
  return ConstrainedProblem(std::move(f), {g}, 2);
}

anneal::PBitBackend small_backend(std::size_t sweeps = 200,
                                  double beta_max = 10.0) {
  return anneal::PBitBackend(pbit::Schedule::linear(beta_max), sweeps);
}

TEST(SaimSolver, ClosesGapOnFig2Toy) {
  const auto problem = fig2_toy();
  auto backend = small_backend();
  SaimOptions opts;
  opts.iterations = 60;
  opts.eta = 0.3;
  opts.penalty = 0.4;  // deliberately below the critical value
  opts.seed = 3;
  SaimSolver solver(problem, backend, opts);
  const auto result = solver.solve();
  ASSERT_TRUE(result.found_feasible);
  // The only feasible point is x=2 (x0=0,x1=1), cost f = -2.
  EXPECT_DOUBLE_EQ(result.best_cost, -2.0);
  ASSERT_EQ(result.best_x.size(), 2u);
  EXPECT_EQ(result.best_x[0], 0);
  EXPECT_EQ(result.best_x[1], 1);
}

TEST(SaimSolver, PenaltyAloneFailsWhereSaimSucceeds) {
  // Same toy, same tiny P: with eta = 0 (pure penalty method) the minimum
  // of E is the unfeasible x=3, so the machine rarely if ever samples x=2.
  const auto problem = fig2_toy();
  auto backend = small_backend();
  PenaltyOptions popts;
  popts.runs = 60;
  popts.penalty = 0.4;
  popts.seed = 3;
  const auto penalty_result =
      solve_penalty_method(problem, backend, popts);
  // The pure penalty method with P < P_C concentrates on x=3; it must have
  // a materially worse feasibility rate than SAIM's (which shapes the
  // landscape toward x=2).
  auto backend2 = small_backend();
  SaimOptions sopts;
  sopts.iterations = 60;
  sopts.eta = 0.3;
  sopts.penalty = 0.4;
  sopts.seed = 3;
  SaimSolver saim(problem, backend2, sopts);
  const auto saim_result = saim.solve();
  EXPECT_GT(saim_result.feasibility_rate(),
            penalty_result.feasibility_rate());
}

TEST(SaimSolver, HeuristicPenaltyAppliedWhenUnset) {
  const auto inst = problems::make_paper_qkp(20, 50, 1);
  const auto mapping = problems::qkp_to_problem(inst);
  auto backend = small_backend();
  SaimOptions opts;
  opts.iterations = 1;
  opts.penalty_alpha = 2.0;
  SaimSolver solver(mapping.problem, backend, opts);
  EXPECT_NEAR(solver.penalty(),
              lagrange::heuristic_penalty(mapping.problem, 2.0), 1e-12);
}

TEST(SaimSolver, ExplicitPenaltyOverridesHeuristic) {
  const auto problem = fig2_toy();
  auto backend = small_backend();
  SaimOptions opts;
  opts.iterations = 1;
  opts.penalty = 7.5;
  SaimSolver solver(problem, backend, opts);
  EXPECT_DOUBLE_EQ(solver.penalty(), 7.5);
}

TEST(SaimSolver, ZeroIterationsThrows) {
  const auto problem = fig2_toy();
  auto backend = small_backend();
  SaimOptions opts;
  opts.iterations = 0;
  EXPECT_THROW(SaimSolver(problem, backend, opts), std::invalid_argument);
}

TEST(SaimSolver, HistoryRecordsEveryIteration) {
  const auto problem = fig2_toy();
  auto backend = small_backend();
  SaimOptions opts;
  opts.iterations = 25;
  opts.eta = 0.2;
  opts.penalty = 0.4;
  opts.record_history = true;
  SaimSolver solver(problem, backend, opts);
  const auto result = solver.solve();
  ASSERT_EQ(result.history.size(), 25u);
  for (std::size_t k = 0; k < result.history.size(); ++k) {
    EXPECT_EQ(result.history[k].iteration, k);
    EXPECT_EQ(result.history[k].lambda.size(), 1u);
  }
  // lambda starts at zero and must have moved at some point.
  EXPECT_DOUBLE_EQ(result.history.front().lambda[0], 0.0);
  bool moved = false;
  for (const auto& rec : result.history) {
    if (rec.lambda[0] != 0.0) moved = true;
  }
  EXPECT_TRUE(moved);
}

TEST(SaimSolver, SweepAccountingMatchesBudget) {
  const auto problem = fig2_toy();
  auto backend = small_backend(150);
  SaimOptions opts;
  opts.iterations = 20;
  opts.penalty = 0.4;
  SaimSolver solver(problem, backend, opts);
  const auto result = solver.solve();
  EXPECT_EQ(result.total_runs, 20u);
  EXPECT_EQ(result.total_sweeps, 20u * 150u);
}

TEST(SaimSolver, DeterministicPerSeed) {
  const auto inst = problems::make_paper_qkp(15, 50, 3);
  const auto mapping = problems::qkp_to_problem(inst);
  const auto eval = make_qkp_evaluator(inst);

  auto run_once = [&] {
    auto backend = small_backend(100);
    SaimOptions opts;
    opts.iterations = 30;
    opts.eta = 20.0;
    opts.seed = 17;
    SaimSolver solver(mapping.problem, backend, opts);
    return solver.solve(eval);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.feasible_count, b.feasible_count);
  EXPECT_EQ(a.best_x, b.best_x);
}

TEST(SaimSolver, FindsOptimumOnExhaustivelySolvedQkp) {
  const auto inst = problems::make_paper_qkp(12, 50, 9);
  const auto mapping = problems::qkp_to_problem(inst);
  const auto eval = make_qkp_evaluator(inst);

  // Ground truth by enumeration over the 12 decision bits.
  const auto exact = exact::exhaustive_minimize(
      inst.n(), [&](std::span<const std::uint8_t> x) {
        exact::Verdict v;
        v.feasible = inst.feasible(x);
        v.cost = static_cast<double>(inst.cost(x));
        return v;
      });
  ASSERT_TRUE(exact.found);

  auto backend = small_backend(300, 10.0);
  SaimOptions opts;
  opts.iterations = 150;
  opts.eta = 20.0;
  opts.penalty_alpha = 2.0;
  opts.seed = 9;
  SaimSolver solver(mapping.problem, backend, opts);
  const auto result = solver.solve(eval);
  ASSERT_TRUE(result.found_feasible);
  EXPECT_DOUBLE_EQ(result.best_cost, exact.best_cost);
}

TEST(SaimSolver, StepRulesProduceDifferentTrajectories) {
  const auto problem = fig2_toy();
  auto run_with = [&](StepRule rule) {
    auto backend = small_backend();
    SaimOptions opts;
    opts.iterations = 30;
    opts.eta = 0.5;
    opts.penalty = 0.4;
    opts.seed = 1;
    opts.step_rule = rule;
    opts.record_history = true;
    SaimSolver solver(problem, backend, opts);
    return solver.solve();
  };
  const auto fixed = run_with(StepRule::kFixed);
  const auto dim = run_with(StepRule::kDiminishing);
  // Same seed, same first iteration, but the lambda paths must diverge.
  ASSERT_FALSE(fixed.history.empty());
  ASSERT_FALSE(dim.history.empty());
  bool diverged = false;
  for (std::size_t k = 0; k < fixed.history.size(); ++k) {
    if (fixed.history[k].lambda != dim.history[k].lambda) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(SaimSolver, EqualityEvaluatorRequiresSlackCompletion) {
  const auto problem = fig2_toy();
  const auto eval = make_equality_evaluator(problem);
  // x=2 encoded as (0,1): g = 0 -> feasible; cost = f = -2.
  const std::vector<std::uint8_t> feasible = {0, 1};
  const auto v1 = eval(feasible);
  EXPECT_TRUE(v1.feasible);
  EXPECT_DOUBLE_EQ(v1.cost, -2.0);
  const std::vector<std::uint8_t> infeasible = {1, 1};
  EXPECT_FALSE(eval(infeasible).feasible);
}

TEST(SaimSolver, AccuracyMetricMatchesPaperEquation) {
  // accuracy = 100 c/OPT with negative costs.
  EXPECT_DOUBLE_EQ(accuracy_percent(-99.0, -100.0), 99.0);
  EXPECT_DOUBLE_EQ(accuracy_percent(-100.0, -100.0), 100.0);
  EXPECT_DOUBLE_EQ(accuracy_percent(0.0, -100.0), 0.0);
  EXPECT_DOUBLE_EQ(accuracy_percent(-50.0, 0.0), 0.0);
}

TEST(Params, TableOneValues) {
  const auto qkp = qkp_paper_params();
  EXPECT_DOUBLE_EQ(qkp.penalty_alpha, 2.0);
  EXPECT_EQ(qkp.mcs_per_run, 1000u);
  EXPECT_EQ(qkp.runs, 2000u);
  EXPECT_DOUBLE_EQ(qkp.beta_max, 10.0);
  EXPECT_DOUBLE_EQ(qkp.eta, 20.0);

  const auto mkp = mkp_paper_params();
  EXPECT_DOUBLE_EQ(mkp.penalty_alpha, 5.0);
  EXPECT_EQ(mkp.mcs_per_run, 1000u);
  EXPECT_EQ(mkp.runs, 5000u);
  EXPECT_DOUBLE_EQ(mkp.beta_max, 50.0);
  EXPECT_DOUBLE_EQ(mkp.eta, 0.05);
}

}  // namespace
}  // namespace saim::core
