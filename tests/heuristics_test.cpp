#include "heuristics/greedy.hpp"

#include <gtest/gtest.h>

#include "exact/exhaustive.hpp"
#include "util/rng.hpp"

namespace saim::heuristics {
namespace {

TEST(GreedyMkp, ProducesFeasibleSelection) {
  problems::MkpGeneratorParams p;
  p.n = 50;
  p.m = 5;
  p.seed = 1;
  const auto inst = problems::generate_mkp(p);
  const auto x = greedy_mkp(inst);
  EXPECT_TRUE(inst.feasible(x));
  EXPECT_GT(inst.profit(x), 0);
}

TEST(GreedyMkp, SelectionIsMaximal) {
  problems::MkpGeneratorParams p;
  p.n = 30;
  p.m = 3;
  p.seed = 2;
  const auto inst = problems::generate_mkp(p);
  auto x = greedy_mkp(inst);
  // No unselected item can be added without breaking feasibility.
  for (std::size_t j = 0; j < inst.n(); ++j) {
    if (x[j]) continue;
    x[j] = 1;
    EXPECT_FALSE(inst.feasible(x)) << "item " << j << " could be added";
    x[j] = 0;
  }
}

TEST(GreedyQkp, ProducesFeasibleSelection) {
  problems::QkpGeneratorParams p;
  p.n = 40;
  p.density = 0.5;
  p.seed = 3;
  const auto inst = problems::generate_qkp(p);
  const auto x = greedy_qkp(inst);
  EXPECT_TRUE(inst.feasible(x));
  EXPECT_GT(inst.profit(x), 0);
}

TEST(GreedyQkp, NeverBeatsExhaustiveOptimum) {
  problems::QkpGeneratorParams p;
  p.n = 12;
  p.density = 0.5;
  p.seed = 4;
  const auto inst = problems::generate_qkp(p);
  const auto greedy = greedy_qkp(inst);
  const auto exact = exact::exhaustive_minimize(
      inst.n(), [&](std::span<const std::uint8_t> x) {
        exact::Verdict v;
        v.feasible = inst.feasible(x);
        v.cost = static_cast<double>(inst.cost(x));
        return v;
      });
  ASSERT_TRUE(exact.found);
  EXPECT_LE(static_cast<double>(inst.profit(greedy)), -exact.best_cost);
}

TEST(MkpDensities, ComputedAsValueOverNormalizedWeight) {
  const problems::MkpInstance inst("t", {10, 20}, {2, 4, 5, 5}, {10, 10});
  const auto d = mkp_densities(inst);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_NEAR(d[0], 10.0 / (0.2 + 0.5), 1e-12);
  EXPECT_NEAR(d[1], 20.0 / (0.4 + 0.5), 1e-12);
}

TEST(RepairMkp, AlreadyFeasibleStaysFeasibleAndBecomesMaximal) {
  problems::MkpGeneratorParams p;
  p.n = 25;
  p.m = 4;
  p.seed = 5;
  const auto inst = problems::generate_mkp(p);
  std::vector<std::uint8_t> x(inst.n(), 0);  // empty selection
  repair_mkp(inst, x);
  EXPECT_TRUE(inst.feasible(x));
  for (std::size_t j = 0; j < inst.n(); ++j) {
    if (x[j]) continue;
    x[j] = 1;
    EXPECT_FALSE(inst.feasible(x));
    x[j] = 0;
  }
}

TEST(RepairMkp, FullyOverloadedSelectionIsRepaired) {
  problems::MkpGeneratorParams p;
  p.n = 30;
  p.m = 5;
  p.seed = 6;
  const auto inst = problems::generate_mkp(p);
  std::vector<std::uint8_t> x(inst.n(), 1);  // grossly infeasible
  repair_mkp(inst, x);
  EXPECT_TRUE(inst.feasible(x));
}

// Property: repair always yields feasible selections from random starts.
class RepairProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RepairProperty, RandomStartsAlwaysRepaired) {
  problems::MkpGeneratorParams p;
  p.n = 20;
  p.m = 3;
  p.seed = GetParam();
  const auto inst = problems::generate_mkp(p);
  util::Xoshiro256pp rng(GetParam() + 99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> x(inst.n());
    for (auto& b : x) b = rng.bernoulli(0.7) ? 1 : 0;
    repair_mkp(inst, x);
    ASSERT_TRUE(inst.feasible(x));
  }
}

TEST_P(RepairProperty, RepairNeverRemovesFeasibleProfitEntirely) {
  problems::MkpGeneratorParams p;
  p.n = 20;
  p.m = 3;
  p.seed = GetParam() + 500;
  const auto inst = problems::generate_mkp(p);
  std::vector<std::uint8_t> x(inst.n(), 1);
  repair_mkp(inst, x);
  // A maximal repaired selection on these instances always keeps something.
  EXPECT_GT(inst.profit(x), 0);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, RepairProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace saim::heuristics
