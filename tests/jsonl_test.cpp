#include "util/jsonl.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "core/report.hpp"
#include "core/result.hpp"

namespace saim {
namespace {

// ----------------------------------------------------------------- parse

TEST(JsonParse, FlatObject) {
  const auto v = util::parse_json(
      R"({"id":"j1","iterations":200,"eta":0.05,"cache":true,"x":null})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("id")->as_string(), "j1");
  EXPECT_EQ(v.find("iterations")->as_int(), 200);
  EXPECT_DOUBLE_EQ(v.find("eta")->as_double(), 0.05);
  EXPECT_TRUE(v.find("cache")->as_bool());
  EXPECT_TRUE(v.find("x")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, NestedStructures) {
  const auto v = util::parse_json(R"({"a":{"b":[1,2,3]},"c":[{"d":-1.5e2}]})");
  const auto* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->find("b")->array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->find("b")->array()[1].as_double(), 2.0);
  EXPECT_DOUBLE_EQ(v.find("c")->array()[0].find("d")->as_double(), -150.0);
}

TEST(JsonParse, StringEscapes) {
  const auto v = util::parse_json(R"({"s":"a\"b\\c\n\tAé"})");
  EXPECT_EQ(v.find("s")->as_string(), "a\"b\\c\n\tA\xc3\xa9");
}

TEST(JsonParse, SurrogatePair) {
  // U+1F600 escaped as a surrogate pair -> 4-byte UTF-8.
  const auto v = util::parse_json(R"(["\ud83d\ude00"])");
  EXPECT_EQ(v.array()[0].as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, WhitespaceTolerant) {
  const auto v = util::parse_json("  { \"a\" :\t[ 1 , 2 ] }\r\n");
  EXPECT_EQ(v.find("a")->array().size(), 2u);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(util::parse_json(""), std::runtime_error);
  EXPECT_THROW(util::parse_json("{"), std::runtime_error);
  EXPECT_THROW(util::parse_json("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(util::parse_json("{} trailing"), std::runtime_error);
  EXPECT_THROW(util::parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW(util::parse_json("truthy"), std::runtime_error);
  EXPECT_THROW(util::parse_json("1.2.3"), std::runtime_error);
  EXPECT_THROW(util::parse_json(R"("lone \ud800")"), std::runtime_error);
}

TEST(JsonParse, ErrorNamesByteOffset) {
  try {
    util::parse_json(R"({"a": nope})");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

TEST(JsonParse, TypedAccessorsDoNotCoerce) {
  const auto v = util::parse_json(R"({"n": 5, "s": "x"})");
  EXPECT_EQ(v.find("s")->as_int(42), 42);      // string is not a number
  EXPECT_EQ(v.find("n")->as_string(), "");     // number is not a string
  EXPECT_FALSE(v.find("n")->as_bool(false));   // number is not a bool
}

// ----------------------------------------------------------------- write

TEST(JsonWriter, BuildsObjectInOrder) {
  util::JsonWriter w;
  w.field("s", "hi").field("i", std::int64_t{-3}).field("b", false);
  EXPECT_EQ(w.str(), R"({"s":"hi","i":-3,"b":false})");
}

TEST(JsonWriter, EscapesStrings) {
  util::JsonWriter w;
  w.field("s", "a\"b\\c\nd\x01");
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\u0001\"}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  util::JsonWriter w;
  w.field("inf", std::numeric_limits<double>::infinity());
  EXPECT_EQ(w.str(), R"({"inf":null})");
}

TEST(JsonWriter, RoundTripsThroughParser) {
  util::JsonWriter w;
  w.field("cost", -1234.5678).field("ok", true).raw_field("sub", "[1,2]");
  const auto v = util::parse_json(w.str());
  EXPECT_DOUBLE_EQ(v.find("cost")->as_double(), -1234.5678);
  EXPECT_TRUE(v.find("ok")->as_bool());
  EXPECT_EQ(v.find("sub")->array().size(), 2u);
}

// ------------------------------------------------------------ round trip
//
// ISSUE 4 satellite: json_escape emits \u00XX for control chars and the
// parser decodes \uXXXX (including surrogate pairs); pin the full
// encode/decode loop over the hostile corners so the two sides can never
// drift apart.

TEST(JsonRoundTrip, EveryControlCharSurvivesEscapeAndParse) {
  for (int c = 0; c < 0x20; ++c) {
    std::string raw(1, static_cast<char>(c));
    raw += "x";  // make sure escaping composes with plain text
    const std::string doc = "\"" + util::json_escape(raw) + "\"";
    EXPECT_EQ(util::parse_json(doc).as_string(), raw) << "control char " << c;
  }
}

TEST(JsonRoundTrip, Utf8AndSurrogatePairsSurviveToJson) {
  // Escaped surrogate pair (U+1F600), 3-byte UTF-8 (é via raw bytes), and
  // a 2-byte char: parse -> serialize -> parse is the identity, and the
  // serialized form carries the UTF-8 bytes through untouched.
  const auto v = util::parse_json(R"(["😀", "Aé", "é"])");
  EXPECT_EQ(v.array()[0].as_string(), "\xf0\x9f\x98\x80");
  EXPECT_EQ(v.array()[2].as_string(), "\xc3\xa9");
  const std::string serialized = util::to_json(v);
  EXPECT_NE(serialized.find("\xf0\x9f\x98\x80"), std::string::npos);
  const auto again = util::parse_json(serialized);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(again.array()[i].as_string(), v.array()[i].as_string());
  }
}

TEST(JsonRoundTrip, MaxCodepointAndBoundarySurrogates) {
  // U+10FFFF = 􏿿 (4-byte UTF-8), U+10000 = 𐀀.
  const auto v = util::parse_json(R"(["􏿿", "𐀀"])");
  EXPECT_EQ(v.array()[0].as_string(), "\xf4\x8f\xbf\xbf");
  EXPECT_EQ(v.array()[1].as_string(), "\xf0\x90\x80\x80");
  EXPECT_EQ(util::parse_json(util::to_json(v)).array()[0].as_string(),
            v.array()[0].as_string());
}

TEST(JsonRoundTrip, InvalidEscapesAllThrow) {
  // Bad \u escapes, lone/mismatched surrogates, truncated escapes: every
  // one must throw, never mis-decode.
  for (const char* doc : {
           R"("\uZZZZ")",        // non-hex digits
           R"("\u12")",          // truncated hex
           R"("\ud800")",        // lone high surrogate at end of string
           R"("\ud800x")",       // high surrogate not followed by \u
           R"("\ud800A")",  // high surrogate + non-surrogate
           R"("\ud800\ud800")",  // high surrogate + high surrogate
           R"("\udc00")",        // lone low surrogate
           R"("\x41")",          // unknown escape letter
           "\"\\",               // escape at end of input
       }) {
    EXPECT_THROW(util::parse_json(doc), std::runtime_error) << doc;
  }
}

TEST(JsonRoundTrip, FuzzishStringsThroughEscapeParseLoop) {
  // Deterministic pseudo-random byte strings (all byte values, embedded
  // NULs, quote/backslash runs): escape -> parse must reproduce the
  // input bytes exactly.
  std::uint64_t state = 0x243f6a8885a308d3ULL;
  for (int round = 0; round < 200; ++round) {
    std::string raw;
    const std::size_t len = 1 + (state >> 58);
    for (std::size_t i = 0; i < len; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      unsigned char byte = static_cast<unsigned char>(state >> 33);
      if (byte >= 0x80) byte &= 0x7f;  // keep it valid single-byte UTF-8
      raw.push_back(static_cast<char>(byte));
    }
    const std::string doc = "\"" + util::json_escape(raw) + "\"";
    EXPECT_EQ(util::parse_json(doc).as_string(), raw);
  }
}

TEST(JsonRoundTrip, ToJsonReproducesDocuments) {
  // Nested document with the number corners that must survive re-reading
  // (17 significant digits, negative zero collapse is NOT applied here —
  // the writer emits what the double holds).
  const std::string doc =
      R"({"a":[1,2.5,-3e-05,null,true,false],"b":{"c":"x\ny","d":[]},)"
      R"("n":9007199254740992})";
  const auto v = util::parse_json(doc);
  const std::string serialized = util::to_json(v);
  const auto again = util::parse_json(serialized);
  EXPECT_DOUBLE_EQ(again.find("a")->array()[2].as_double(), -3e-05);
  EXPECT_EQ(again.find("b")->find("c")->as_string(), "x\ny");
  EXPECT_EQ(again.find("b")->find("d")->array().size(), 0u);
  EXPECT_EQ(again.find("n")->as_uint(), 9007199254740992ULL);
  // Serialization is a fixed point: to_json(parse(to_json(x))) == to_json(x).
  EXPECT_EQ(util::to_json(again), serialized);
}

TEST(JsonRoundTrip, ToJsonEscapesKeysAndHandlesNonFinite) {
  util::JsonValue::Object obj;
  obj["k\n"] = util::JsonValue("v");
  obj["inf"] = util::JsonValue(std::numeric_limits<double>::infinity());
  const std::string serialized = util::to_json(util::JsonValue(obj));
  EXPECT_EQ(serialized, "{\"inf\":null,\"k\\n\":\"v\"}");
}

// ------------------------------------------------------- result_to_jsonl

TEST(ResultJsonl, SerializesAndParsesBack) {
  core::SolveResult result;
  result.found_feasible = true;
  result.best_cost = -987.0;
  result.feasible_count = 12;
  result.total_runs = 100;
  result.total_sweeps = 100000;

  core::JsonlContext context;
  context.id = "job-1";
  context.instance = "300-50-8";
  context.backend = "pbit";
  context.wall_ms = 12.5;
  context.cache_hit = true;
  context.fingerprint = 0xdeadbeefULL;

  const std::string line = core::result_to_jsonl(result, context);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one line, by contract

  const auto v = util::parse_json(line);
  EXPECT_EQ(v.find("id")->as_string(), "job-1");
  EXPECT_EQ(v.find("instance")->as_string(), "300-50-8");
  EXPECT_EQ(v.find("backend")->as_string(), "pbit");
  EXPECT_EQ(v.find("status")->as_string(), "completed");
  EXPECT_TRUE(v.find("found_feasible")->as_bool());
  EXPECT_DOUBLE_EQ(v.find("best_cost")->as_double(), -987.0);
  EXPECT_EQ(v.find("feasible_count")->as_int(), 12);
  EXPECT_EQ(v.find("iterations")->as_int(), 100);
  EXPECT_EQ(v.find("total_sweeps")->as_int(), 100000);
  EXPECT_DOUBLE_EQ(v.find("wall_ms")->as_double(), 12.5);
  EXPECT_TRUE(v.find("cache_hit")->as_bool());
  EXPECT_EQ(v.find("fingerprint")->as_string(), "00000000deadbeef");
}

TEST(ResultJsonl, InfeasibleResultHasNullCostAndStatusString) {
  core::SolveResult result;
  result.status = core::Status::kDeadline;
  const auto v = util::parse_json(core::result_to_jsonl(result, {}));
  EXPECT_EQ(v.find("status")->as_string(), "deadline");
  EXPECT_FALSE(v.find("found_feasible")->as_bool());
  EXPECT_TRUE(v.find("best_cost")->is_null());
}

}  // namespace
}  // namespace saim
