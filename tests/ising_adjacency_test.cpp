#include "ising/adjacency.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace saim::ising {
namespace {

TEST(Adjacency, EmptyModel) {
  IsingModel ising(4);
  Adjacency adj(ising);
  EXPECT_EQ(adj.n(), 4u);
  EXPECT_EQ(adj.edge_count(), 0u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(adj.neighbors(i).empty());
  }
}

TEST(Adjacency, SingleEdgeBothDirections) {
  IsingModel ising(3);
  ising.add_coupling(0, 2, 1.5);
  Adjacency adj(ising);
  EXPECT_EQ(adj.edge_count(), 1u);
  ASSERT_EQ(adj.neighbors(0).size(), 1u);
  EXPECT_EQ(adj.neighbors(0)[0], 2u);
  EXPECT_DOUBLE_EQ(adj.weights(0)[0], 1.5);
  ASSERT_EQ(adj.neighbors(2).size(), 1u);
  EXPECT_EQ(adj.neighbors(2)[0], 0u);
  EXPECT_TRUE(adj.neighbors(1).empty());
}

// Property sweep: CSR coupling_input must equal the dense model input minus
// the field on random graphs and random states.
class AdjacencyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdjacencyProperty, CouplingInputMatchesDense) {
  util::Xoshiro256pp rng(GetParam());
  const std::size_t n = 2 + rng.below(20);
  IsingModel ising(n);
  for (std::size_t i = 0; i < n; ++i) {
    ising.add_field(i, rng.uniform_sym());
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(0.4)) {
        ising.add_coupling(i, j, rng.uniform_sym() * 2.0);
      }
    }
  }
  Adjacency adj(ising);
  EXPECT_EQ(adj.edge_count(), ising.nnz());

  Spins m(n);
  for (auto& s : m) s = rng.bernoulli(0.5) ? 1 : -1;
  for (std::size_t i = 0; i < n; ++i) {
    const double dense = ising.input(m, i) - ising.field(i);
    EXPECT_NEAR(adj.coupling_input(m, i), dense, 1e-10);
  }
}

TEST_P(AdjacencyProperty, DegreesSumToTwiceEdges) {
  util::Xoshiro256pp rng(GetParam() + 333);
  const std::size_t n = 2 + rng.below(16);
  IsingModel ising(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(0.3)) ising.add_coupling(i, j, 1.0);
    }
  }
  Adjacency adj(ising);
  std::size_t degree_sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    degree_sum += adj.neighbors(i).size();
  }
  EXPECT_EQ(degree_sum, 2 * adj.edge_count());
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, AdjacencyProperty,
                         ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
}  // namespace saim::ising
