#include "problems/normalize.hpp"

#include <gtest/gtest.h>

#include "problems/qkp.hpp"
#include "util/rng.hpp"

namespace saim::problems {
namespace {

ConstrainedProblem small_problem() {
  ising::QuboModel f(3);
  f.add_linear(0, -8.0);
  f.add_quadratic(1, 2, 4.0);
  LinearConstraint g;
  g.terms = {{0, 2.0}, {1, 6.0}};
  g.rhs = 10.0;
  return ConstrainedProblem(std::move(f), {g}, 3);
}

TEST(Normalize, MaxAbsHelpers) {
  const auto p = small_problem();
  EXPECT_DOUBLE_EQ(objective_max_abs(p), 8.0);
  EXPECT_DOUBLE_EQ(constraint_max_abs(p), 10.0);
}

TEST(Normalize, ScalesReported) {
  const auto p = small_problem();
  NormalizationScales s;
  const auto q = normalized(p, &s);
  EXPECT_DOUBLE_EQ(s.objective, 8.0);
  EXPECT_DOUBLE_EQ(s.constraint, 10.0);
  EXPECT_DOUBLE_EQ(objective_max_abs(q), 1.0);
  EXPECT_DOUBLE_EQ(constraint_max_abs(q), 1.0);
}

TEST(Normalize, ObjectiveScaledExactly) {
  const auto p = small_problem();
  const auto q = normalized(p);
  const std::vector<std::uint8_t> x = {1, 1, 1};
  EXPECT_NEAR(q.objective_value(x) * 8.0, p.objective_value(x), 1e-12);
}

TEST(Normalize, FeasibleSetPreserved) {
  const auto p = small_problem();
  const auto q = normalized(p);
  for (std::uint64_t code = 0; code < 8; ++code) {
    std::vector<std::uint8_t> x(3);
    for (std::size_t i = 0; i < 3; ++i) {
      x[i] = static_cast<std::uint8_t>((code >> i) & 1ULL);
    }
    const bool feas_p = p.max_violation(x) <= 1e-12;
    const bool feas_q = q.max_violation(x) <= 1e-12;
    EXPECT_EQ(feas_p, feas_q) << "code=" << code;
  }
}

TEST(Normalize, ZeroProblemsGetUnitScales) {
  ising::QuboModel f(2);
  ConstrainedProblem p(std::move(f), {}, 2);
  NormalizationScales s;
  (void)normalized(p, &s);
  EXPECT_DOUBLE_EQ(s.objective, 1.0);
  EXPECT_DOUBLE_EQ(s.constraint, 1.0);
}

// Property: normalization preserves the argmin set of the objective over
// all configurations (scaling by a positive constant is monotone).
class NormalizePreservesArgmin
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NormalizePreservesArgmin, OnRandomQkpMappings) {
  QkpGeneratorParams params;
  params.n = 8;
  params.density = 0.6;
  params.seed = GetParam();
  const auto inst = generate_qkp(params);
  const auto raw = qkp_to_problem(inst, /*normalize=*/false);
  const auto norm = normalized(raw.problem);

  const std::size_t n = raw.problem.n();
  ASSERT_LE(n, 20u);
  double best_raw = 1e300;
  double best_norm = 1e300;
  std::uint64_t argmin_raw = 0;
  std::uint64_t argmin_norm = 0;
  for (std::uint64_t code = 0; code < (1ULL << n); ++code) {
    std::vector<std::uint8_t> x(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = static_cast<std::uint8_t>((code >> i) & 1ULL);
    }
    const double er = raw.problem.objective_value(x);
    const double en = norm.objective_value(x);
    if (er < best_raw) {
      best_raw = er;
      argmin_raw = code;
    }
    if (en < best_norm) {
      best_norm = en;
      argmin_norm = code;
    }
  }
  EXPECT_EQ(argmin_raw, argmin_norm);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, NormalizePreservesArgmin,
                         ::testing::Range<std::uint64_t>(0, 6));

}  // namespace
}  // namespace saim::problems
