#include "problems/fingerprint.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "problems/mkp.hpp"
#include "problems/qkp.hpp"
#include "service/solve_service.hpp"

namespace saim {
namespace {

problems::ConstrainedProblem qkp_problem(int index = 1) {
  const auto inst = problems::make_paper_qkp(30, 50, index);
  return problems::qkp_to_problem(inst).problem;
}

TEST(Fingerprint, HasherIsDeterministic) {
  problems::Fingerprint a;
  a.mix(std::uint64_t{42}).mix(3.25).mix("hello");
  problems::Fingerprint b;
  b.mix(std::uint64_t{42}).mix(3.25).mix("hello");
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Fingerprint, HasherIsOrderSensitive) {
  problems::Fingerprint a;
  a.mix(std::uint64_t{1}).mix(std::uint64_t{2});
  problems::Fingerprint b;
  b.mix(std::uint64_t{2}).mix(std::uint64_t{1});
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Fingerprint, StringBoundariesMatter) {
  // ("ab","c") must not collide with ("a","bc"): length is mixed first.
  problems::Fingerprint a;
  a.mix("ab").mix("c");
  problems::Fingerprint b;
  b.mix("a").mix("bc");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Fingerprint, SignedZeroCollapses) {
  problems::Fingerprint a;
  a.mix(0.0);
  problems::Fingerprint b;
  b.mix(-0.0);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Fingerprint, SameContentsSameFingerprint) {
  // Two independently built problems from the same instance agree — the
  // property that makes the service cache content-keyed.
  const auto p1 = qkp_problem();
  const auto p2 = qkp_problem();
  EXPECT_EQ(problems::fingerprint(p1), problems::fingerprint(p2));
}

TEST(Fingerprint, RoundTrippedInstanceAgrees) {
  const auto inst = problems::make_paper_qkp(25, 50, 3);
  std::stringstream ss;
  problems::save_qkp(ss, inst);
  const auto reloaded = problems::load_qkp(ss);
  EXPECT_EQ(
      problems::fingerprint(problems::qkp_to_problem(inst).problem),
      problems::fingerprint(problems::qkp_to_problem(reloaded).problem));
}

TEST(Fingerprint, DifferentInstancesDiffer) {
  EXPECT_NE(problems::fingerprint(qkp_problem(1)),
            problems::fingerprint(qkp_problem(2)));
}

TEST(Fingerprint, QkpAndMkpDiffer) {
  const auto mkp = problems::make_paper_mkp(30, 5, 1);
  EXPECT_NE(problems::fingerprint(qkp_problem()),
            problems::fingerprint(problems::mkp_to_problem(mkp).problem));
}

service::SolveRequest base_request() {
  service::SolveRequest request;
  request.problem =
      std::make_shared<problems::ConstrainedProblem>(qkp_problem());
  request.options.iterations = 10;
  return request;
}

TEST(RequestFingerprint, StableAcrossIdenticalRequests) {
  EXPECT_EQ(service::SolveService::request_fingerprint(base_request()),
            service::SolveService::request_fingerprint(base_request()));
}

TEST(RequestFingerprint, SensitiveToEverySolveParameter) {
  const auto base = service::SolveService::request_fingerprint(base_request());

  auto seed = base_request();
  seed.options.seed = 7;
  EXPECT_NE(base, service::SolveService::request_fingerprint(seed));

  auto backend = base_request();
  backend.backend.name = "tabu";
  EXPECT_NE(base, service::SolveService::request_fingerprint(backend));

  auto sweeps = base_request();
  sweeps.backend.sweeps = 123;
  EXPECT_NE(base, service::SolveService::request_fingerprint(sweeps));

  auto eta = base_request();
  eta.options.eta = 0.05;
  EXPECT_NE(base, service::SolveService::request_fingerprint(eta));

  auto replicas = base_request();
  replicas.options.replicas = 4;
  EXPECT_NE(base, service::SolveService::request_fingerprint(replicas));
}

TEST(RequestFingerprint, IgnoresServingOnlyFields) {
  const auto base = service::SolveService::request_fingerprint(base_request());

  auto req = base_request();
  req.priority = service::Priority::kHigh;
  req.timeout = std::chrono::milliseconds(500);
  req.tag = "some-label";
  req.use_cache = false;
  EXPECT_EQ(base, service::SolveService::request_fingerprint(req));
}

}  // namespace
}  // namespace saim
