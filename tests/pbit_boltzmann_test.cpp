// Statistical validation of the p-bit machine's core physics claim
// (paper eq. 11): sequentially updated p-bits sample the Boltzmann
// distribution P{m} ∝ exp(-beta H{m}). We histogram long Gibbs runs on
// exhaustively-enumerable systems and compare to the exact distribution
// with a chi-square test.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "pbit/pbit_machine.hpp"

namespace saim::pbit {
namespace {

std::size_t state_code(const ising::Spins& m) {
  std::size_t code = 0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m[i] > 0) code |= (1u << i);
  }
  return code;
}

ising::Spins code_state(std::size_t code, std::size_t n) {
  ising::Spins m(n);
  for (std::size_t i = 0; i < n; ++i) {
    m[i] = (code >> i) & 1u ? std::int8_t{1} : std::int8_t{-1};
  }
  return m;
}

/// Chi-square statistic between empirical counts and the exact Boltzmann
/// probabilities of `model` at inverse temperature beta.
double boltzmann_chi_square(const ising::IsingModel& model, double beta,
                            std::size_t samples, std::uint64_t seed,
                            std::size_t burn_in = 2000) {
  const std::size_t n = model.n();
  const std::size_t states = 1u << n;

  std::vector<double> weight(states);
  double z = 0.0;
  for (std::size_t code = 0; code < states; ++code) {
    weight[code] = std::exp(-beta * model.energy(code_state(code, n)));
    z += weight[code];
  }

  std::vector<std::size_t> counts(states, 0);
  PBitMachine machine(model);
  util::Xoshiro256pp rng(seed);
  machine.sample(beta, burn_in, samples, rng,
                 [&](const ising::Spins& m) { ++counts[state_code(m)]; });

  double chi2 = 0.0;
  for (std::size_t code = 0; code < states; ++code) {
    const double expected = static_cast<double>(samples) * weight[code] / z;
    if (expected < 1e-9) continue;
    const double d = static_cast<double>(counts[code]) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

TEST(Boltzmann, SingleSpinWithField) {
  // P(m=+1) = e^{beta h} / (e^{beta h} + e^{-beta h}).
  ising::IsingModel model(1);
  model.add_field(0, 0.8);
  const double beta = 1.0;
  PBitMachine machine(model);
  util::Xoshiro256pp rng(1);
  std::size_t ups = 0;
  const std::size_t samples = 200000;
  machine.sample(beta, 100, samples, rng, [&](const ising::Spins& m) {
    if (m[0] == 1) ++ups;
  });
  const double expected =
      std::exp(beta * 0.8) / (std::exp(beta * 0.8) + std::exp(-beta * 0.8));
  EXPECT_NEAR(static_cast<double>(ups) / samples, expected, 0.01);
}

TEST(Boltzmann, TwoSpinFerromagnetChiSquare) {
  ising::IsingModel model(2);
  model.add_coupling(0, 1, 1.0);
  // 3 dof; 99.9th percentile ~ 16.3. Use a generous threshold to keep the
  // test robust while still catching gross sampler bugs.
  EXPECT_LT(boltzmann_chi_square(model, 0.7, 150000, 11), 25.0);
}

TEST(Boltzmann, ThreeSpinFrustratedTriangleChiSquare) {
  // Antiferromagnetic triangle: 6 degenerate ground states — a classic
  // trap for broken samplers that lose ergodicity.
  ising::IsingModel model(3);
  model.add_coupling(0, 1, -1.0);
  model.add_coupling(1, 2, -1.0);
  model.add_coupling(0, 2, -1.0);
  // 7 dof; 99.9th percentile ~ 24.3.
  EXPECT_LT(boltzmann_chi_square(model, 0.6, 200000, 13), 32.0);
}

TEST(Boltzmann, FieldsAndCouplingsMixedChiSquare) {
  ising::IsingModel model(3);
  model.add_coupling(0, 1, 0.5);
  model.add_coupling(1, 2, -0.3);
  model.add_field(0, 0.4);
  model.add_field(2, -0.6);
  EXPECT_LT(boltzmann_chi_square(model, 0.8, 200000, 17), 32.0);
}

TEST(Boltzmann, HighBetaConcentratesOnGroundStates) {
  ising::IsingModel model(3);
  model.add_coupling(0, 1, 1.0);
  model.add_coupling(1, 2, 1.0);
  PBitMachine machine(model);
  util::Xoshiro256pp rng(19);
  std::size_t ground = 0;
  const std::size_t samples = 20000;
  machine.sample(5.0, 2000, samples, rng, [&](const ising::Spins& m) {
    if (m[0] == m[1] && m[1] == m[2]) ++ground;
  });
  EXPECT_GT(static_cast<double>(ground) / samples, 0.99);
}

// Parameterized sweep over temperatures for a fixed 2-spin system: the
// sampler must match Boltzmann at hot, warm and cold temperatures alike.
class BoltzmannTemperatureSweep : public ::testing::TestWithParam<double> {};

TEST_P(BoltzmannTemperatureSweep, TwoSpinWithFieldMatches) {
  ising::IsingModel model(2);
  model.add_coupling(0, 1, 0.8);
  model.add_field(0, -0.3);
  const double beta = GetParam();
  EXPECT_LT(boltzmann_chi_square(model, beta, 120000, 23), 25.0)
      << "beta=" << beta;
}

INSTANTIATE_TEST_SUITE_P(Betas, BoltzmannTemperatureSweep,
                         ::testing::Values(0.2, 0.5, 1.0, 1.5));

}  // namespace
}  // namespace saim::pbit
