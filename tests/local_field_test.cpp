#include "ising/local_field.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <utility>

#include "ising/adjacency.hpp"
#include "ising/ising_model.hpp"
#include "util/rng.hpp"

namespace saim::ising {
namespace {

/// Random model with double-valued couplings (general-precision case).
IsingModel random_model(std::size_t n, double density, std::uint64_t seed) {
  IsingModel model(n);
  util::Xoshiro256pp rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform01() < density) {
        model.add_coupling(i, j, rng.uniform_sym());
      }
    }
    model.add_field(i, rng.uniform_sym());
  }
  return model;
}

Spins random_spins(std::size_t n, util::Xoshiro256pp& rng) {
  Spins m(n);
  for (auto& s : m) s = rng.bernoulli(0.5) ? 1 : -1;
  return m;
}

TEST(LocalFieldState, ResetMatchesDenseInputs) {
  const auto model = random_model(24, 0.4, 1);
  const Adjacency adj(model);
  util::Xoshiro256pp rng(2);
  const Spins m = random_spins(model.n(), rng);

  LocalFieldState lfs(model, adj);
  lfs.reset(m);
  for (std::size_t i = 0; i < model.n(); ++i) {
    EXPECT_NEAR(lfs.field(i), model.input(m, i), 1e-12);
  }
  EXPECT_NEAR(lfs.energy(), model.energy(m), 1e-12);
}

TEST(LocalFieldState, StaysInSyncThroughManyFlips) {
  const auto model = random_model(32, 0.3, 3);
  const Adjacency adj(model);
  util::Xoshiro256pp rng(4);
  Spins m = random_spins(model.n(), rng);

  LocalFieldState lfs(model, adj);
  lfs.reset(m);
  for (int step = 0; step < 500; ++step) {
    const auto i = static_cast<std::size_t>(rng.below(model.n()));
    const double expected_delta = model.flip_delta(m, i);
    EXPECT_NEAR(lfs.flip_delta(m, i), expected_delta, 1e-9);
    const double delta = lfs.flip(m, i);
    EXPECT_NEAR(delta, expected_delta, 1e-9);
  }
  // After 500 incremental updates the engine still agrees with the dense
  // recompute to tight tolerance.
  for (std::size_t i = 0; i < model.n(); ++i) {
    EXPECT_NEAR(lfs.field(i), model.input(m, i), 1e-9);
  }
  EXPECT_NEAR(lfs.energy(), model.energy(m), 1e-9);
}

TEST(LocalFieldState, ReadsFieldUpdatesLive) {
  // SAIM's lambda updates rewrite h between runs; the engine must see the
  // new fields without a reset.
  auto model = random_model(10, 0.5, 5);
  const Adjacency adj(model);
  util::Xoshiro256pp rng(6);
  const Spins m = random_spins(model.n(), rng);

  LocalFieldState lfs(model, adj);
  lfs.reset(m);
  const double before = lfs.field(3);
  model.set_field(3, model.field(3) + 2.5);
  EXPECT_NEAR(lfs.field(3), before + 2.5, 1e-12);
}

TEST(LocalFieldState, SwapExchangesConfigurations) {
  const auto model = random_model(16, 0.5, 7);
  const Adjacency adj(model);
  util::Xoshiro256pp rng(8);
  Spins a = random_spins(model.n(), rng);
  Spins b = random_spins(model.n(), rng);

  LocalFieldState fa(model, adj);
  LocalFieldState fb(model, adj);
  fa.reset(a);
  fb.reset(b);
  const double ea = fa.energy();
  const double eb = fb.energy();

  swap(fa, fb);
  EXPECT_DOUBLE_EQ(fa.energy(), eb);
  EXPECT_DOUBLE_EQ(fb.energy(), ea);
  for (std::size_t i = 0; i < model.n(); ++i) {
    EXPECT_NEAR(fa.field(i), model.input(b, i), 1e-12);
    EXPECT_NEAR(fb.field(i), model.input(a, i), 1e-12);
  }
}

TEST(LocalFieldState, FlipIsAnInvolutionOnEnergy) {
  const auto model = random_model(20, 0.4, 9);
  const Adjacency adj(model);
  util::Xoshiro256pp rng(10);
  Spins m = random_spins(model.n(), rng);

  LocalFieldState lfs(model, adj);
  lfs.reset(m);
  const double e0 = lfs.energy();
  const double d1 = lfs.flip(m, 5);
  const double d2 = lfs.flip(m, 5);
  EXPECT_NEAR(d1, -d2, 1e-12);
  EXPECT_NEAR(lfs.energy(), e0, 1e-12);
}

}  // namespace
}  // namespace saim::ising
