// Tests for the src/net transport subsystem: line framing over stream
// fds (partial lines, short reads, EOF mid-line), the non-blocking
// Connection, host:port parsing, Listener/connect_to over loopback TCP,
// and — when the build provides SAIM_SERVE_BIN — the transport-equality
// contract of ISSUE 5: the same job stream routed through SocketChild
// endpoints (against real `saim_serve --listen` servers) produces
// solver output bit-identical to the pipe-transport fleet.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/connection.hpp"
#include "net/framing.hpp"
#include "net/listener.hpp"
#include "net/socket_child.hpp"
#include "service/process_child.hpp"
#include "service/shard_driver.hpp"
#include "service/shard_router.hpp"
#include "util/jsonl.hpp"

namespace saim {
namespace {

using namespace saim::net;

// ---------------------------------------------------------------- framing

TEST(LineFramer, AssemblesLinesAcrossArbitraryFragments) {
  LineFramer framer;
  framer.feed("he", 2);
  EXPECT_TRUE(framer.take_lines().empty());
  framer.feed("llo\nwor", 7);
  const auto first = framer.take_lines();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0], "hello");
  EXPECT_EQ(framer.partial_bytes(), 3u);  // "wor" awaits its newline
  framer.feed("ld\n", 3);
  const auto second = framer.take_lines();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], "world");
  EXPECT_EQ(framer.partial_bytes(), 0u);
}

TEST(LineFramer, ManyLinesInOneFragmentAndEmptyLines) {
  LineFramer framer;
  const std::string chunk = "a\n\nb\n";
  framer.feed(chunk.data(), chunk.size());
  const auto lines = framer.take_lines();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "");
  EXPECT_EQ(lines[2], "b");
}

TEST(LineFramer, ByteAtATimeDelivery) {
  LineFramer framer;
  const std::string line = "{\"id\":\"x\",\"gen\":\"qkp:30-25-1\"}\n";
  std::vector<std::string> got;
  for (const char c : line) {
    framer.feed(&c, 1);
    for (auto& l : framer.take_lines()) got.push_back(std::move(l));
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0] + "\n", line);
}

// ------------------------------------------------------------- connection

/// A connected socketpair with `a` wrapped in Connection and `b` raw.
struct Pair {
  Connection a;
  int b_fd = -1;
  Pair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = Connection(fds[0]);
    b_fd = fds[1];
  }
  ~Pair() {
    if (b_fd >= 0) ::close(b_fd);
  }
};

TEST(Connection, ShortReadsReassembleIntoLines) {
  Pair pair;
  // Write a line in torn fragments with pauses the reader cannot see.
  const std::string line = "{\"id\":\"frag\"}";
  ASSERT_EQ(::write(pair.b_fd, line.data(), 5), 5);
  EXPECT_TRUE(pair.a.read_lines().empty()) << "half a line is not a line";
  const std::string rest = line.substr(5) + "\nnext";
  ASSERT_EQ(::write(pair.b_fd, rest.data(), rest.size()),
            static_cast<ssize_t>(rest.size()));
  const auto lines = pair.a.read_lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], line);
  EXPECT_FALSE(pair.a.eof());

  // The trailing "next" never gets its newline: dropped at EOF.
  ::close(pair.b_fd);
  pair.b_fd = -1;
  EXPECT_TRUE(pair.a.read_lines().empty());
  EXPECT_TRUE(pair.a.eof());
}

TEST(Connection, LineLargerThanOneReadBuffer) {
  Pair pair;
  std::string big(20000, 'x');  // several 4096-byte reads
  big += "\n";
  std::size_t off = 0;
  std::vector<std::string> lines;
  while (off < big.size()) {
    const auto n = ::write(pair.b_fd, big.data() + off,
                           std::min<std::size_t>(4096, big.size() - off));
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
    for (auto& l : pair.a.read_lines()) lines.push_back(std::move(l));
  }
  for (auto& l : pair.a.read_lines()) lines.push_back(std::move(l));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].size(), 20000u);
}

TEST(Connection, SendBuffersUntilPumpedAndSurvivesBackpressure) {
  Pair pair;
  // Queue more than the kernel buffer will take at once.
  const std::string line(8192, 'y');
  for (int i = 0; i < 100; ++i) pair.a.send_line(line);
  // Pump while the peer drains; everything must arrive.
  std::size_t received = 0;
  while (received < 100 * (line.size() + 1)) {
    pair.a.pump_writes();
    char buf[16384];
    const auto n = ::recv(pair.b_fd, buf, sizeof buf, MSG_DONTWAIT);
    if (n > 0) received += static_cast<std::size_t>(n);
  }
  EXPECT_EQ(pair.a.outbound_bytes(), 0u);
}

TEST(Connection, WriteToClosedPeerBreaksInsteadOfKilling) {
  Pair pair;
  ::close(pair.b_fd);
  pair.b_fd = -1;
  pair.a.send_line("into the void");
  // One pump may succeed into the kernel buffer; repeated pumps must
  // surface the break without raising SIGPIPE (process-wide ignore is
  // installed by ProcessChild; sockets use send-side error returns).
  for (int i = 0; i < 10 && pair.a.pump_writes(); ++i) {
    pair.a.send_line("more");
  }
  EXPECT_TRUE(pair.a.broken() || pair.a.outbound_bytes() == 0);
}

TEST(ParseHostPort, AcceptsAndRejects) {
  const auto ok = parse_hostport("127.0.0.1:7777");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->host, "127.0.0.1");
  EXPECT_EQ(ok->port, 7777);

  const auto v6 = parse_hostport("[::1]:80");
  ASSERT_TRUE(v6.has_value());
  EXPECT_EQ(v6->host, "::1");
  EXPECT_EQ(v6->port, 80);

  const auto zero = parse_hostport("box:0");
  ASSERT_TRUE(zero.has_value());
  EXPECT_EQ(zero->port, 0);

  EXPECT_FALSE(parse_hostport("noport").has_value());
  EXPECT_FALSE(parse_hostport("host:").has_value());
  EXPECT_FALSE(parse_hostport(":123").has_value());
  EXPECT_FALSE(parse_hostport("host:abc").has_value());
  EXPECT_FALSE(parse_hostport("host:70000").has_value());
}

// ------------------------------------------------------ listener loopback

TEST(Listener, EphemeralPortAcceptsAndExchangesLines) {
  Listener listener("127.0.0.1", 0);
  ASSERT_GT(listener.port(), 0);
  EXPECT_FALSE(listener.accept_fd().has_value()) << "nobody connected yet";

  Connection client = connect_to("127.0.0.1", listener.port());
  std::optional<int> server_fd;
  for (int spin = 0; spin < 2000 && !server_fd; ++spin) {
    server_fd = listener.accept_fd();
    if (!server_fd) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(server_fd.has_value());
  Connection server(*server_fd);

  client.send_line("ping over tcp");
  client.pump_writes();
  std::vector<std::string> got;
  for (int spin = 0; spin < 2000 && got.empty(); ++spin) {
    got = server.read_lines();
    if (got.empty()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "ping over tcp");

  server.send_line("pong over tcp");
  server.pump_writes();
  got.clear();
  for (int spin = 0; spin < 2000 && got.empty(); ++spin) {
    got = client.read_lines();
    if (got.empty()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "pong over tcp");

  // Half-close from the client is EOF for the server, not an error.
  client.shutdown_write();
  for (int spin = 0; spin < 2000 && !server.eof(); ++spin) {
    server.read_lines();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(server.eof());
}

TEST(Listener, ConnectToNobodyThrows) {
  int dead_port;
  {
    Listener probe("127.0.0.1", 0);
    dead_port = probe.port();
  }  // closed: nothing listens there now
  EXPECT_THROW((void)connect_to("127.0.0.1", dead_port), std::runtime_error);
}

// ------------------------------------- transport equality with saim_serve

const char* serve_bin() {
#ifdef SAIM_SERVE_BIN
  return SAIM_SERVE_BIN;
#else
  return nullptr;
#endif
}

/// Spawns a `saim_serve --listen` server and connects a SocketChild.
/// The server process handle keeps it alive; pass-through of the bound
/// port goes through --port-file (race-free with ephemeral ports).
struct RemoteShard {
  std::unique_ptr<service::ProcessChild> server;
  int port = 0;
};

RemoteShard spawn_listen_serve(const std::string& tag,
                               std::vector<std::string> extra_args = {}) {
  RemoteShard remote;
  const std::string port_file = "net_test_port_" + tag + ".tmp";
  std::remove(port_file.c_str());
  std::vector<std::string> argv{serve_bin(),    "--listen", "127.0.0.1:0",
                                "--port-file",  port_file,  "--stream",
                                "--workers",    "1",        "--cache",
                                "0"};
  argv.insert(argv.end(), extra_args.begin(), extra_args.end());
  remote.server = std::make_unique<service::ProcessChild>(std::move(argv));
  for (int spin = 0; spin < 10000 && remote.port == 0; ++spin) {
    std::ifstream pf(port_file);
    if (!(pf >> remote.port)) {
      remote.port = 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  std::remove(port_file.c_str());
  return remote;
}

std::vector<std::string> job_stream() {
  std::vector<std::string> lines;
  for (int k = 1; k <= 3; ++k) {
    for (int j = 1; j <= 2; ++j) {
      lines.push_back("{\"id\":\"k" + std::to_string(k) + "j" +
                      std::to_string(j) + "\",\"gen\":\"qkp:30-25-" +
                      std::to_string(k) +
                      "\",\"iterations\":3,\"sweeps\":50,\"seed\":" +
                      std::to_string(j) + "}");
    }
  }
  return lines;
}

/// Drives `lines` through a fleet of endpoints; returns result lines.
std::vector<std::string> route_through(
    std::vector<std::unique_ptr<net::ShardEndpoint>> endpoints,
    const std::vector<std::string>& lines) {
  service::RouterOptions options;
  options.shards = endpoints.size();
  service::ShardRouter router(options);
  std::vector<std::string> out;
  std::size_t line_no = 0;
  for (const auto& line : lines) {
    for (auto& l : router.accept_line(line, ++line_no)) {
      out.push_back(std::move(l));
    }
  }
  for (int spin = 0; spin < 20000 && !router.idle(); ++spin) {
    for (auto& l : service::pump_shards(router, endpoints, 2)) {
      out.push_back(std::move(l));
    }
    if (router.live_shards() == 0) break;
  }
  EXPECT_TRUE(router.idle());
  for (auto& e : endpoints) e->shutdown_input();
  return out;
}

/// Solver-produced fields: everything except scheduling artifacts
/// (seq = arrival order, wall_ms = timing, batch_size = whether twins
/// happened to be queued together when a worker popped).
std::map<std::string, std::string> solved_fields(const std::string& line) {
  const auto v = util::parse_json(line);
  std::map<std::string, std::string> fields;
  for (const auto& [key, value] : v.object()) {
    if (key == "seq" || key == "wall_ms" || key == "batch_size") continue;
    fields[key] = util::to_json(value);
  }
  return fields;
}

TEST(TransportEquality, SocketFleetMatchesPipeFleetBitForBit) {
  if (!serve_bin()) GTEST_SKIP() << "saim_serve not built";
  const auto lines = job_stream();

  // Pipe transport: 2 fork/exec children.
  std::vector<std::unique_ptr<net::ShardEndpoint>> pipes;
  for (int s = 0; s < 2; ++s) {
    pipes.push_back(std::make_unique<service::ProcessChild>(
        std::vector<std::string>{serve_bin(), "--stream", "--workers", "1",
                                 "--cache", "0"}));
  }
  const auto pipe_out = route_through(std::move(pipes), lines);

  // Socket transport: 2 --listen servers over loopback TCP.
  auto remote_a = spawn_listen_serve("a");
  auto remote_b = spawn_listen_serve("b");
  ASSERT_GT(remote_a.port, 0) << "listen server never wrote its port";
  ASSERT_GT(remote_b.port, 0);
  std::vector<std::unique_ptr<net::ShardEndpoint>> sockets;
  sockets.push_back(
      std::make_unique<net::SocketChild>("127.0.0.1", remote_a.port));
  sockets.push_back(
      std::make_unique<net::SocketChild>("127.0.0.1", remote_b.port));
  const auto socket_out = route_through(std::move(sockets), lines);

  ASSERT_EQ(pipe_out.size(), lines.size());
  ASSERT_EQ(socket_out.size(), lines.size());
  // Key by id; every solver field must match byte for byte.
  std::map<std::string, std::map<std::string, std::string>> pipe_by_id;
  std::map<std::string, std::map<std::string, std::string>> socket_by_id;
  for (const auto& line : pipe_out) {
    pipe_by_id[util::parse_json(line).find("id")->as_string()] =
        solved_fields(line);
  }
  for (const auto& line : socket_out) {
    socket_by_id[util::parse_json(line).find("id")->as_string()] =
        solved_fields(line);
  }
  ASSERT_EQ(pipe_by_id.size(), lines.size());
  EXPECT_EQ(pipe_by_id, socket_by_id)
      << "socket transport must not perturb any solver output";

  // Both runs numbered their accepted jobs contiguously.
  for (const auto* out : {&pipe_out, &socket_out}) {
    std::set<std::int64_t> seqs;
    for (const auto& line : *out) {
      seqs.insert(util::parse_json(line).find("seq")->as_int());
    }
    EXPECT_EQ(seqs.size(), lines.size());
    EXPECT_EQ(*seqs.begin(), 0);
  }
  remote_a.server->terminate();
  remote_b.server->terminate();
}

TEST(TransportEquality, EventLoopMatchesThreadedServerBitForBit) {
  if (!serve_bin()) GTEST_SKIP() << "saim_serve not built";
  const auto lines = job_stream();

  // Same stream through one event-loop server (the --listen default)
  // and one legacy --threaded server: every solver-produced field must
  // match byte for byte — the two front doors share StreamSessionCore,
  // and this pins that they stay interchangeable.
  std::map<std::string, std::map<std::string, std::string>> by_id[2];
  RemoteShard remotes[2] = {spawn_listen_serve("evt"),
                            spawn_listen_serve("thr", {"--threaded"})};
  for (int f = 0; f < 2; ++f) {
    ASSERT_GT(remotes[f].port, 0) << "listen server never wrote its port";
    std::vector<std::unique_ptr<net::ShardEndpoint>> sockets;
    sockets.push_back(
        std::make_unique<net::SocketChild>("127.0.0.1", remotes[f].port));
    const auto out = route_through(std::move(sockets), lines);
    ASSERT_EQ(out.size(), lines.size());
    std::set<std::int64_t> seqs;
    for (const auto& line : out) {
      by_id[f][util::parse_json(line).find("id")->as_string()] =
          solved_fields(line);
      seqs.insert(util::parse_json(line).find("seq")->as_int());
    }
    EXPECT_EQ(seqs.size(), lines.size());
    EXPECT_EQ(*seqs.begin(), 0);
  }
  ASSERT_EQ(by_id[0].size(), lines.size());
  EXPECT_EQ(by_id[0], by_id[1])
      << "event-loop server must not perturb any solver output";
  remotes[0].server->terminate();
  remotes[1].server->terminate();
}

// ------------------------------------------------------ shard-side auth

/// Sends one job over `shard` and collects lines until EOF or the first
/// result, whichever comes first.
std::vector<std::string> try_one_job(net::SocketChild& shard) {
  shard.send_line(
      R"({"id":"one","gen":"qkp:30-25-1","iterations":2,"sweeps":20})");
  shard.pump_writes();
  std::vector<std::string> lines;
  for (int spin = 0; spin < 20000 && !shard.eof() && lines.empty(); ++spin) {
    shard.pump_writes();
    for (auto& l : shard.read_lines()) lines.push_back(std::move(l));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& l : shard.read_lines()) lines.push_back(std::move(l));
  return lines;
}

TEST(ShardAuth, TokenGatesTheSessionFailingClosed) {
  if (!serve_bin()) GTEST_SKIP() << "saim_serve not built";
  auto remote = spawn_listen_serve("auth", {"--auth-token", "s3cr3t"});
  ASSERT_GT(remote.port, 0);

  // Correct token: the SocketChild sends the {"auth":...} handshake
  // before anything else and the session proceeds normally.
  {
    net::SocketChild shard("127.0.0.1", remote.port, "s3cr3t");
    const auto lines = try_one_job(shard);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"status\":\"completed\""), std::string::npos);
    EXPECT_FALSE(shard.eof());
  }

  // Wrong token: the server closes the connection before the job line is
  // ever parsed — EOF, zero result lines.
  {
    net::SocketChild shard("127.0.0.1", remote.port, "wrong");
    const auto lines = try_one_job(shard);
    EXPECT_TRUE(lines.empty()) << lines.front();
    EXPECT_TRUE(shard.eof());
  }

  // Missing token: the first line is a job, not a handshake — same
  // fail-closed close, and the job is NOT executed.
  {
    net::SocketChild shard("127.0.0.1", remote.port);
    const auto lines = try_one_job(shard);
    EXPECT_TRUE(lines.empty()) << lines.front();
    EXPECT_TRUE(shard.eof());
  }

  // The gate is per-session: a good client still works afterwards.
  {
    net::SocketChild shard("127.0.0.1", remote.port, "s3cr3t");
    const auto lines = try_one_job(shard);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"status\":\"completed\""), std::string::npos);
  }
  remote.server->terminate();
}

TEST(ShardAuth, NoServerTokenMeansNoHandshakeRequired) {
  if (!serve_bin()) GTEST_SKIP() << "saim_serve not built";
  auto remote = spawn_listen_serve("noauth");
  ASSERT_GT(remote.port, 0);
  net::SocketChild shard("127.0.0.1", remote.port);
  const auto lines = try_one_job(shard);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"status\":\"completed\""), std::string::npos);
  remote.server->terminate();
}

TEST(TransportEquality, ListenServerShutdownCmdExitsZero) {
  if (!serve_bin()) GTEST_SKIP() << "saim_serve not built";
  auto remote = spawn_listen_serve("bye");
  ASSERT_GT(remote.port, 0);
  // A second, idle client parked in the server's blocking read: the
  // shutdown below must not hang on it (the server half-closes parked
  // sessions to unblock them).
  Connection idler = connect_to("127.0.0.1", remote.port);
  net::SocketChild shard("127.0.0.1", remote.port);
  shard.send_line(
      R"({"id":"one","gen":"qkp:30-25-1","iterations":2,"sweeps":20})");
  shard.send_line(R"({"cmd":"shutdown","id":"bye"})");
  shard.pump_writes();

  std::vector<std::string> lines;
  for (int spin = 0; spin < 20000 && !shard.eof(); ++spin) {
    for (auto& l : shard.read_lines()) lines.push_back(std::move(l));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& l : shard.read_lines()) lines.push_back(std::move(l));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"status\":\"completed\""), std::string::npos);
  const auto bye = util::parse_json(lines[1]);
  EXPECT_TRUE(bye.find("bye")->as_bool());

  // The whole server process exits 0: shutdown is a clean stop.
  auto* server = remote.server.get();
  for (int spin = 0; spin < 20000 && server->running(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_FALSE(server->running()) << "server must exit after shutdown";
  ASSERT_TRUE(WIFEXITED(server->exit_status()));
  EXPECT_EQ(WEXITSTATUS(server->exit_status()), 0);
}

}  // namespace
}  // namespace saim
