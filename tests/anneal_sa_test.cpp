#include "anneal/simulated_annealing.hpp"

#include <gtest/gtest.h>

#include "anneal/backend.hpp"

namespace saim::anneal {
namespace {

ising::IsingModel ferromagnet(std::size_t n) {
  ising::IsingModel model(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      model.add_coupling(i, j, 1.0);
    }
  }
  return model;
}

TEST(MetropolisSa, FindsFerromagnetGroundState) {
  const auto model = ferromagnet(12);
  MetropolisSa sa(model);
  util::Xoshiro256pp rng(1);
  SaOptions opts;
  opts.sweeps = 300;
  const auto result = sa.run(pbit::Schedule::linear(5.0), opts, rng);
  EXPECT_DOUBLE_EQ(result.best_energy, -66.0);
}

TEST(MetropolisSa, EnergyBookkeepingConsistent) {
  ising::IsingModel model(9);
  model.add_coupling(0, 3, -1.2);
  model.add_coupling(4, 7, 0.9);
  model.add_field(2, 0.4);
  model.add_offset(-2.0);
  MetropolisSa sa(model);
  util::Xoshiro256pp rng(5);
  SaOptions opts;
  opts.sweeps = 80;
  const auto result = sa.run(pbit::Schedule::linear(3.0), opts, rng);
  EXPECT_NEAR(result.last_energy, model.energy(result.last), 1e-9);
  EXPECT_NEAR(result.best_energy, model.energy(result.best), 1e-9);
  EXPECT_LE(result.best_energy, result.last_energy + 1e-12);
}

TEST(MetropolisSa, RunFromKeepsGroundStateAtHighBeta) {
  const auto model = ferromagnet(8);
  MetropolisSa sa(model);
  util::Xoshiro256pp rng(3);
  ising::Spins ground(8, std::int8_t{1});
  SaOptions opts;
  opts.sweeps = 40;
  const auto result =
      sa.run_from(ground, pbit::Schedule::constant(50.0), opts, rng);
  EXPECT_DOUBLE_EQ(result.last_energy, -28.0);
}

TEST(MetropolisSa, DeterministicPerSeed) {
  const auto model = ferromagnet(10);
  MetropolisSa sa(model);
  SaOptions opts;
  opts.sweeps = 60;
  util::Xoshiro256pp a(9);
  util::Xoshiro256pp b(9);
  const auto ra = sa.run(pbit::Schedule::linear(2.0), opts, a);
  const auto rb = sa.run(pbit::Schedule::linear(2.0), opts, b);
  EXPECT_EQ(ra.last, rb.last);
}

TEST(SaBackend, RunBeforeBindThrows) {
  MetropolisSaBackend backend(pbit::Schedule::linear(5.0), 100);
  util::Xoshiro256pp rng(1);
  EXPECT_THROW(backend.run(rng), std::logic_error);
}

TEST(SaBackend, SolvesAfterBind) {
  const auto model = ferromagnet(10);
  MetropolisSaBackend backend(pbit::Schedule::linear(5.0), 200);
  backend.bind(model);
  util::Xoshiro256pp rng(2);
  const auto result = backend.run(rng);
  EXPECT_DOUBLE_EQ(result.best_energy, -45.0);
  EXPECT_EQ(backend.sweeps_per_run(), 200u);
  EXPECT_EQ(backend.name(), "metropolis-sa");
}

TEST(PBitBackendAdapter, RunBeforeBindThrows) {
  PBitBackend backend(pbit::Schedule::linear(5.0), 100);
  util::Xoshiro256pp rng(1);
  EXPECT_THROW(backend.run(rng), std::logic_error);
}

TEST(PBitBackendAdapter, SolvesAfterBind) {
  const auto model = ferromagnet(10);
  PBitBackend backend(pbit::Schedule::linear(5.0), 300);
  backend.bind(model);
  util::Xoshiro256pp rng(4);
  const auto result = backend.run(rng);
  EXPECT_DOUBLE_EQ(result.last_energy, -45.0);
  EXPECT_EQ(backend.sweeps_per_run(), 300u);
  EXPECT_EQ(backend.name(), "pbit");
  EXPECT_EQ(result.sweeps, 300u);
}

TEST(PBitBackendAdapter, WarmRestartContinuesFromPreviousState) {
  // At very high constant beta the ferromagnet cannot leave its ground
  // state: after one cold run finds it, warm restarts must stay there,
  // whereas cold restarts would start from a random (usually excited)
  // state and report a different trajectory.
  const auto model = ferromagnet(10);
  PBitBackend backend(pbit::Schedule::constant(50.0), 30);
  backend.set_warm_restart(true);
  backend.bind(model);
  util::Xoshiro256pp rng(8);
  // Drive the first run into the ground state with a proper anneal by
  // seeding the previous state manually: run several times; once the ground
  // state is reached every subsequent run must stay at -45.
  bool reached = false;
  for (int r = 0; r < 20; ++r) {
    const auto result = backend.run(rng);
    if (result.last_energy == -45.0) reached = true;
    if (reached) {
      EXPECT_DOUBLE_EQ(result.last_energy, -45.0);
    }
  }
  EXPECT_TRUE(reached);
}

TEST(PBitBackendAdapter, RebindClearsWarmState) {
  const auto model_a = ferromagnet(10);
  const auto model_b = ferromagnet(12);
  PBitBackend backend(pbit::Schedule::linear(5.0), 100);
  backend.set_warm_restart(true);
  backend.bind(model_a);
  util::Xoshiro256pp rng(3);
  (void)backend.run(rng);
  // Rebinding to a model of different size must not reuse the stale state.
  backend.bind(model_b);
  const auto result = backend.run(rng);
  EXPECT_EQ(result.last.size(), 12u);
}

TEST(PBitBackendAdapter, SeesLiveFieldUpdates) {
  // The backend reads the bound model's fields at run time: flipping the
  // field sign must flip the preferred spin without a rebind.
  ising::IsingModel model(1);
  model.add_field(0, 4.0);
  PBitBackend backend(pbit::Schedule::linear(10.0), 50);
  backend.bind(model);
  util::Xoshiro256pp rng(6);
  EXPECT_EQ(backend.run(rng).last[0], 1);

  model.set_field(0, -4.0);
  backend.fields_updated();
  EXPECT_EQ(backend.run(rng).last[0], -1);
}

}  // namespace
}  // namespace saim::anneal
