#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace saim::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats whole;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 50; ++i) {
    const double v = 0.37 * i - 3.0;
    whole.add(v);
    (i < 20 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(5.0);
  s.reset();
  EXPECT_TRUE(s.empty());
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> v = {42.0};
  EXPECT_EQ(percentile(v, 0.0), 42.0);
  EXPECT_EQ(percentile(v, 100.0), 42.0);
}

TEST(Percentile, LinearInterpolation) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 1.75);
}

TEST(Percentile, ClampsOutOfRangeP) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 150.0), 2.0);
}

TEST(Summarize, FiveNumberSummary) {
  // Unsorted on purpose: summarize must sort internally.
  const std::vector<double> v = {9.0, 1.0, 5.0, 3.0, 7.0};
  const QuartileSummary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.q1, 3.0);
  EXPECT_DOUBLE_EQ(s.q3, 7.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.iqr(), 4.0);
}

TEST(Summarize, EmptyInput) {
  const QuartileSummary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.median, 0.0);
}

TEST(MeanOf, Basic) {
  const std::vector<double> v = {1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 3.0);
  EXPECT_EQ(mean_of({}), 0.0);
}

TEST(FormatSummary, ContainsAllFields) {
  QuartileSummary s;
  s.min = 1;
  s.q1 = 2;
  s.median = 3;
  s.q3 = 4;
  s.max = 5;
  s.mean = 3;
  const std::string out = format_summary(s, 1);
  EXPECT_NE(out.find("1.0/2.0/3.0/4.0/5.0"), std::string::npos);
  EXPECT_NE(out.find("mean 3.0"), std::string::npos);
}

// Property-style sweep: quartiles of arithmetic sequences are exact.
class QuartileSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuartileSweep, ArithmeticSequenceQuartiles) {
  const int n = GetParam();
  std::vector<double> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = i;
  const QuartileSummary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, n - 1.0);
  EXPECT_NEAR(s.median, (n - 1.0) / 2.0, 1e-12);
  EXPECT_NEAR(s.q1, (n - 1.0) * 0.25, 1e-12);
  EXPECT_NEAR(s.q3, (n - 1.0) * 0.75, 1e-12);
  EXPECT_NEAR(s.mean, (n - 1.0) / 2.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, QuartileSweep,
                         ::testing::Values(2, 3, 4, 5, 8, 13, 100, 999));

}  // namespace
}  // namespace saim::util
