#include "problems/qkp.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.hpp"

namespace saim::problems {
namespace {

QkpInstance tiny_instance() {
  // 3 items: values 10,20,30; pair value W(0,1)=5; weights 2,3,4; cap 5.
  std::vector<std::int64_t> w(9, 0);
  w[0 * 3 + 1] = 5;
  w[1 * 3 + 0] = 5;
  return QkpInstance("tiny", {10, 20, 30}, w, {2, 3, 4}, 5);
}

TEST(QkpInstance, ProfitCountsPairsOnce) {
  const auto inst = tiny_instance();
  EXPECT_EQ(inst.profit(std::vector<std::uint8_t>{1, 1, 0}), 10 + 20 + 5);
  EXPECT_EQ(inst.profit(std::vector<std::uint8_t>{1, 0, 1}), 10 + 30);
  EXPECT_EQ(inst.profit(std::vector<std::uint8_t>{0, 0, 0}), 0);
}

TEST(QkpInstance, CostIsNegatedProfit) {
  const auto inst = tiny_instance();
  EXPECT_EQ(inst.cost(std::vector<std::uint8_t>{1, 1, 0}), -35);
}

TEST(QkpInstance, FeasibilityIsCapacityCheck) {
  const auto inst = tiny_instance();
  EXPECT_TRUE(inst.feasible(std::vector<std::uint8_t>{1, 1, 0}));   // w=5
  EXPECT_FALSE(inst.feasible(std::vector<std::uint8_t>{0, 1, 1}));  // w=7
  EXPECT_TRUE(inst.feasible(std::vector<std::uint8_t>{0, 0, 0}));   // w=0
}

TEST(QkpInstance, DensityMatchesNnz) {
  const auto inst = tiny_instance();
  EXPECT_DOUBLE_EQ(inst.density(), 1.0 / 3.0);  // one pair of three
}

TEST(QkpInstance, MaxObjectiveCoefficient) {
  const auto inst = tiny_instance();
  EXPECT_EQ(inst.max_objective_coefficient(), 30);
}

TEST(QkpInstance, ValidationRejectsBadShapes) {
  EXPECT_THROW(QkpInstance("x", {1, 2}, {0, 0, 0}, {1, 2}, 3),
               std::invalid_argument);  // W not n*n
  EXPECT_THROW(QkpInstance("x", {1}, {0}, {1, 2}, 3),
               std::invalid_argument);  // weights wrong length
  EXPECT_THROW(QkpInstance("x", {1}, {0}, {1}, -1),
               std::invalid_argument);  // negative capacity
  EXPECT_THROW(QkpInstance("x", {1, 2}, {0, 1, 2, 0}, {1, 1}, 3),
               std::invalid_argument);  // asymmetric W
  EXPECT_THROW(QkpInstance("x", {1, 2}, {1, 0, 0, 0}, {1, 1}, 3),
               std::invalid_argument);  // nonzero diagonal
}

TEST(QkpGenerator, DeterministicPerSeed) {
  QkpGeneratorParams p;
  p.n = 30;
  p.density = 0.5;
  p.seed = 99;
  const auto a = generate_qkp(p);
  const auto b = generate_qkp(p);
  EXPECT_EQ(a.capacity(), b.capacity());
  for (std::size_t i = 0; i < a.n(); ++i) {
    EXPECT_EQ(a.value(i), b.value(i));
    EXPECT_EQ(a.weight(i), b.weight(i));
  }
}

TEST(QkpGenerator, RespectsCoefficientRanges) {
  QkpGeneratorParams p;
  p.n = 50;
  p.density = 0.5;
  p.seed = 7;
  const auto inst = generate_qkp(p);
  std::int64_t weight_sum = 0;
  for (std::size_t i = 0; i < inst.n(); ++i) {
    EXPECT_GE(inst.value(i), 1);
    EXPECT_LE(inst.value(i), p.max_value);
    EXPECT_GE(inst.weight(i), 1);
    EXPECT_LE(inst.weight(i), p.max_weight);
    weight_sum += inst.weight(i);
    for (std::size_t j = i + 1; j < inst.n(); ++j) {
      EXPECT_GE(inst.pair_value(i, j), 0);
      EXPECT_LE(inst.pair_value(i, j), p.max_value);
    }
  }
  EXPECT_GE(inst.capacity(), p.min_capacity);
  EXPECT_LE(inst.capacity(), weight_sum);
}

TEST(QkpGenerator, DensityIsApproximatelyRequested) {
  QkpGeneratorParams p;
  p.n = 120;
  p.density = 0.25;
  p.seed = 3;
  const auto inst = generate_qkp(p);
  EXPECT_NEAR(inst.density(), 0.25, 0.04);
}

TEST(QkpGenerator, InvalidParamsThrow) {
  QkpGeneratorParams p;
  p.n = 0;
  EXPECT_THROW(generate_qkp(p), std::invalid_argument);
  QkpGeneratorParams q;
  q.density = 1.5;
  EXPECT_THROW(generate_qkp(q), std::invalid_argument);
}

TEST(MakePaperQkp, NamingAndDeterminism) {
  const auto a = make_paper_qkp(100, 25, 3);
  EXPECT_EQ(a.name(), "100-25-3");
  EXPECT_EQ(a.n(), 100u);
  const auto b = make_paper_qkp(100, 25, 3);
  EXPECT_EQ(a.capacity(), b.capacity());
  const auto c = make_paper_qkp(100, 25, 4);
  // Different index must give a different instance (capacity collision is
  // possible but weights differing somewhere is near-certain).
  bool identical = a.capacity() == c.capacity();
  for (std::size_t i = 0; identical && i < a.n(); ++i) {
    identical = a.weight(i) == c.weight(i) && a.value(i) == c.value(i);
  }
  EXPECT_FALSE(identical);
}

TEST(QkpMapping, VariableCountIncludesSlack) {
  const auto inst = tiny_instance();  // capacity 5 -> Q = 3 slack bits
  const auto mapping = qkp_to_problem(inst);
  EXPECT_EQ(mapping.slack.num_bits(), 3u);
  EXPECT_EQ(mapping.problem.n(), 6u);
  EXPECT_EQ(mapping.problem.num_decision(), 3u);
  EXPECT_EQ(mapping.problem.num_constraints(), 1u);
}

TEST(QkpMapping, ObjectiveMatchesScaledCost) {
  const auto inst = tiny_instance();
  const auto mapping = qkp_to_problem(inst);
  // Decision bits {1,1,0} + any slack: objective only involves decisions.
  const std::vector<std::uint8_t> x = {1, 1, 0, 0, 1, 0};
  const double expected =
      static_cast<double>(inst.cost(std::vector<std::uint8_t>{1, 1, 0})) /
      mapping.objective_scale;
  EXPECT_NEAR(mapping.problem.objective_value(x), expected, 1e-12);
}

TEST(QkpMapping, ConstraintZeroIffSlackCompletesCapacity) {
  const auto inst = tiny_instance();
  const auto mapping = qkp_to_problem(inst);
  // Items {0,1}: weight 5 == capacity -> slack must be 0.
  std::vector<std::uint8_t> x = {1, 1, 0, 0, 0, 0};
  EXPECT_NEAR(mapping.problem.max_violation(x), 0.0, 1e-12);
  // Item {0}: weight 2, slack must encode 3 = b11.
  x = {1, 0, 0, 1, 1, 0};
  EXPECT_NEAR(mapping.problem.max_violation(x), 0.0, 1e-12);
  // Wrong slack leaves a violation.
  x = {1, 0, 0, 0, 0, 0};
  EXPECT_GT(mapping.problem.max_violation(x), 0.0);
}

TEST(QkpMapping, NormalizationBoundsCoefficients) {
  const auto inst = make_paper_qkp(40, 50, 1);
  const auto mapping = qkp_to_problem(inst);
  EXPECT_LE(mapping.problem.objective().max_abs_coefficient(), 1.0 + 1e-12);
  for (const auto& row : mapping.problem.constraints()) {
    for (const auto& [idx, coeff] : row.terms) {
      (void)idx;
      EXPECT_LE(std::abs(coeff), 1.0 + 1e-12);
    }
    EXPECT_LE(std::abs(row.rhs), 1.0 + 1e-12);
  }
}

TEST(QkpMapping, UnnormalizedKeepsRawCoefficients) {
  const auto inst = tiny_instance();
  const auto mapping = qkp_to_problem(inst, /*normalize=*/false);
  EXPECT_DOUBLE_EQ(mapping.objective_scale, 1.0);
  EXPECT_DOUBLE_EQ(mapping.constraint_scale, 1.0);
  EXPECT_DOUBLE_EQ(mapping.problem.objective().linear(2), -30.0);
}

TEST(QkpIo, SaveLoadRoundTrip) {
  const auto inst = make_paper_qkp(20, 50, 2);
  std::stringstream ss;
  save_qkp(ss, inst);
  const auto loaded = load_qkp(ss);
  EXPECT_EQ(loaded.name(), inst.name());
  EXPECT_EQ(loaded.n(), inst.n());
  EXPECT_EQ(loaded.capacity(), inst.capacity());
  for (std::size_t i = 0; i < inst.n(); ++i) {
    EXPECT_EQ(loaded.value(i), inst.value(i));
    EXPECT_EQ(loaded.weight(i), inst.weight(i));
    for (std::size_t j = 0; j < inst.n(); ++j) {
      EXPECT_EQ(loaded.pair_value(i, j), inst.pair_value(i, j));
    }
  }
}

TEST(QkpIo, LoadRejectsGarbage) {
  std::stringstream ss("not a valid file");
  EXPECT_THROW(load_qkp(ss), std::runtime_error);
}

// Property: for random instances, every feasible configuration has
// objective == -profit/scale and zero violation with the right slack.
class QkpMappingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QkpMappingProperty, SlackCompletionZeroesConstraint) {
  QkpGeneratorParams p;
  p.n = 12;
  p.density = 0.5;
  p.seed = GetParam();
  const auto inst = generate_qkp(p);
  const auto mapping = qkp_to_problem(inst);
  util::Xoshiro256pp rng(GetParam() + 1);

  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::uint8_t> decision(inst.n());
    for (auto& b : decision) b = rng.bernoulli(0.4) ? 1 : 0;
    if (!inst.feasible(decision)) continue;

    const std::int64_t gap = inst.capacity() - inst.total_weight(decision);
    const auto slack_bits = mapping.slack.encode(gap);
    std::vector<std::uint8_t> x = decision;
    x.insert(x.end(), slack_bits.begin(), slack_bits.end());

    EXPECT_NEAR(mapping.problem.max_violation(x), 0.0, 1e-9);
    EXPECT_NEAR(mapping.problem.objective_value(x) * mapping.objective_scale,
                static_cast<double>(inst.cost(decision)), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, QkpMappingProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace saim::problems
