// Tests for the self-healing fleet layer (ISSUE 5): router support for
// shard revival / growth / in-place requeue, the Supervisor's respawn
// with ring rejoin (SIGKILL mid-stream -> exactly-once, contiguous
// global seq), live resharding under load (2 -> 4 -> 1 with zero lost
// jobs), warm-pool handoff across membership changes, the export_warm /
// import_warm protocol itself against real saim_serve children, and
// graceful fleet teardown without zombie processes.
#include <gtest/gtest.h>

#include <errno.h>
#include <signal.h>
#include <sys/wait.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/socket_child.hpp"
#include "problems/fingerprint.hpp"
#include "problems/qkp.hpp"
#include "service/process_child.hpp"
#include "service/request_builders.hpp"
#include "service/shard_router.hpp"
#include "service/supervisor.hpp"
#include "util/jsonl.hpp"

namespace saim::service {
namespace {

// ------------------------------------------- router units (no processes)

std::string job_line(const std::string& id, int k, std::uint64_t seed) {
  return "{\"id\":\"" + id + "\",\"gen\":\"qkp:30-25-" + std::to_string(k) +
         "\",\"iterations\":2,\"sweeps\":20,\"seed\":" + std::to_string(seed) +
         "}";
}

TEST(ShardRouterFleet, ReviveRestoresTheExactKeyslice) {
  RouterOptions options;
  options.shards = 3;
  ShardRouter router(options);
  // Owners before the crash, over many fingerprints.
  std::map<std::uint64_t, std::size_t> before;
  for (std::uint64_t k = 1; k <= 512; ++k) {
    const std::uint64_t fp = k * 0x9e3779b97f4a7c15ULL;
    before[fp] = router.owner_of(fp);
  }
  (void)router.on_child_down(1);
  EXPECT_EQ(router.live_shards(), 2u);
  router.revive_shard(1);
  EXPECT_EQ(router.live_shards(), 3u);
  EXPECT_TRUE(router.alive(1));
  for (const auto& [fp, owner] : before) {
    EXPECT_EQ(router.owner_of(fp), owner)
        << "revival must restore the pre-crash key layout exactly";
  }
}

TEST(ShardRouterFleet, AddShardExtendsTheRingAndTakesTraffic) {
  RouterOptions options;
  options.shards = 1;
  ShardRouter router(options);
  const std::size_t added = router.add_shard();
  EXPECT_EQ(added, 1u);
  EXPECT_EQ(router.live_shards(), 2u);
  EXPECT_EQ(router.shard_slots(), 2u);
  // With 64 vnodes each, the new shard owns a real share of keys.
  std::size_t moved = 0;
  for (std::uint64_t k = 1; k <= 512; ++k) {
    if (router.owner_of(k * 0x9e3779b97f4a7c15ULL) == added) ++moved;
  }
  EXPECT_GT(moved, 0u);
  // And jobs route to it end-to-end.
  for (int k = 1; k <= 8; ++k) {
    router.accept_line(job_line("j" + std::to_string(k), k, 1),
                       static_cast<std::size_t>(k));
  }
  EXPECT_GT(router.pending(0) + router.pending(1), 0u);
}

TEST(ShardRouterFleet, RequeueInflightHoldsJobsInAcceptOrder) {
  RouterOptions options;
  options.shards = 1;
  options.window = 8;
  ShardRouter router(options);
  for (int j = 0; j < 4; ++j) {
    router.accept_line(job_line("j" + std::to_string(j), 1, j + 1),
                       static_cast<std::size_t>(j + 1));
  }
  const auto sent = router.take_sendable(0);
  ASSERT_EQ(sent.size(), 4u);
  EXPECT_EQ(router.inflight(0), 4u);

  router.requeue_inflight(0);  // the sole-shard crash path
  EXPECT_EQ(router.inflight(0), 0u);
  EXPECT_EQ(router.pending(0), 4u);
  EXPECT_EQ(router.stats().requeued, 4u);
  EXPECT_TRUE(router.alive(0)) << "ring membership must be untouched";
  EXPECT_EQ(router.outstanding(), 4u) << "nothing may orphan";

  // Replay happens in the original accept order.
  const auto replay = router.take_sendable(0);
  ASSERT_EQ(replay.size(), 4u);
  for (int j = 0; j < 4; ++j) {
    EXPECT_NE(replay[j].find("\"id\":\"_r" + std::to_string(j) + "\""),
              std::string::npos)
        << replay[j];
  }
}

TEST(ShardRouterFleet, WarmExportsAreStashedAndInternalAcksSwallowed) {
  RouterOptions options;
  options.shards = 2;
  ShardRouter router(options);
  EXPECT_FALSE(router.take_warm_export(0).has_value());
  EXPECT_TRUE(
      router
          .on_child_line(
              0, R"({"id":"_p1","warm":{"00000000000000ff":[{"cost":-1,"bits":"0101"}]}})")
          .empty());
  const auto warm = router.take_warm_export(0);
  ASSERT_TRUE(warm.has_value());
  EXPECT_NE(warm->find("00000000000000ff"), std::string::npos);
  EXPECT_FALSE(router.take_warm_export(0).has_value()) << "clears on read";

  EXPECT_TRUE(router.on_child_line(0, R"({"id":"_w","imported":3})").empty());
  EXPECT_TRUE(router.on_child_line(0, R"({"id":"_bye","bye":true})").empty());
  EXPECT_FALSE(router.any_error());
}

TEST(ShardRouterFleet, FleetManagementCmdsAreRejectedByTheRouter) {
  RouterOptions options;
  options.shards = 1;
  ShardRouter router(options);
  const auto out =
      router.accept_line(R"({"cmd":"reshard","shards":4})", 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(util::parse_json(out[0])
                .find("error")
                ->as_string()
                .find("fleet supervisor"),
            std::string::npos);
}

// -------------------------------------------------- fleets of saim_serve

const char* serve_bin() {
#ifdef SAIM_SERVE_BIN
  return SAIM_SERVE_BIN;
#else
  return nullptr;
#endif
}

SupervisorOptions fast_supervisor_options() {
  SupervisorOptions options;
  options.local_argv = {serve_bin(), "--stream", "--workers", "1"};
  options.backoff_initial_ms = 50;
  options.backoff_max_ms = 200;
  options.ping_ms = 0;  // deterministic tests drive health explicitly
  return options;
}

/// Pumps until the router is idle (plus `extra` holds) or ~40s pass.
std::vector<std::string> pump_to_idle(
    ShardRouter& router, Supervisor& supervisor,
    const std::function<bool()>& extra = [] { return true; }) {
  std::vector<std::string> out;
  for (int spin = 0; spin < 20000 && !(router.idle() && extra()); ++spin) {
    for (auto& l : supervisor.pump(2)) out.push_back(std::move(l));
  }
  return out;
}

void feed_jobs(ShardRouter& router, std::vector<std::string>* out,
               std::size_t* line_no, int first_k, int last_k,
               std::size_t iterations, std::size_t sweeps) {
  for (int k = first_k; k <= last_k; ++k) {
    for (int j = 1; j <= 2; ++j) {
      const auto id = "k" + std::to_string(k) + "j" + std::to_string(j);
      auto emitted = router.accept_line(
          "{\"id\":\"" + id + "\",\"gen\":\"qkp:60-25-" + std::to_string(k) +
              "\",\"iterations\":" + std::to_string(iterations) +
              ",\"sweeps\":" + std::to_string(sweeps) +
              ",\"seed\":" + std::to_string(j) + "}",
          ++*line_no);
      out->insert(out->end(), emitted.begin(), emitted.end());
    }
  }
}

void expect_exactly_once(const std::vector<std::string>& out,
                         std::size_t jobs) {
  ASSERT_EQ(out.size(), jobs);
  std::set<std::string> ids;
  std::set<std::int64_t> seqs;
  for (const auto& line : out) {
    const auto v = util::parse_json(line);
    ids.insert(v.find("id")->as_string());
    EXPECT_EQ(v.find("error"), nullptr) << line;
    ASSERT_NE(v.find("seq"), nullptr) << line;
    seqs.insert(v.find("seq")->as_int());
  }
  EXPECT_EQ(ids.size(), jobs);
  for (std::size_t s = 0; s < jobs; ++s) {
    EXPECT_TRUE(seqs.contains(static_cast<std::int64_t>(s)));
  }
}

TEST(SupervisorFleet, RespawnsSigkilledShardWhichRejoinsTheRing) {
  if (!serve_bin()) GTEST_SKIP() << "saim_serve not built";
  RouterOptions router_options;
  router_options.shards = 2;
  router_options.window = 4;
  ShardRouter router(router_options);
  Supervisor supervisor(router, fast_supervisor_options());
  supervisor.attach_local(0);
  supervisor.attach_local(1);

  std::vector<std::string> out;
  std::size_t line_no = 0;
  feed_jobs(router, &out, &line_no, 1, 6, 25, 300);
  ASSERT_GT(router.pending(0), 0u);
  ASSERT_GT(router.pending(1), 0u);

  // Mid-stream: at least two results out, victim still has work.
  for (int spin = 0; spin < 10000 && out.size() < 2; ++spin) {
    for (auto& l : supervisor.pump(2)) out.push_back(std::move(l));
  }
  ASSERT_GE(out.size(), 2u);
  const std::size_t victim =
      router.inflight(0) + router.pending(0) >=
              router.inflight(1) + router.pending(1)
          ? 0
          : 1;
  ASSERT_GT(router.inflight(victim) + router.pending(victim), 0u);
  supervisor.endpoint(victim)->terminate();  // SIGKILL

  for (auto& l : pump_to_idle(router, supervisor,
                              [&] { return router.live_shards() == 2; })) {
    out.push_back(std::move(l));
  }

  // Exactly one line per accepted job, contiguous global seq, no errors
  // — and the victim is back on the ring with a fresh process.
  expect_exactly_once(out, 12);
  EXPECT_TRUE(router.alive(victim));
  EXPECT_EQ(router.live_shards(), 2u);
  EXPECT_GE(supervisor.stats().respawns, 1u);
  EXPECT_GT(router.stats().requeued, 0u);
  EXPECT_FALSE(router.any_error());
  supervisor.shutdown_fleet();
}

/// A `saim_serve --listen` server for the remote-reconnect test. Port 0
/// lets the OS pick; the bound port comes back race-free via
/// --port-file. Passing a fixed port pins the replacement server to the
/// dead one's address (SO_REUSEADDR makes the rebind immediate).
struct ListenServer {
  std::unique_ptr<ProcessChild> process;
  int port = 0;
};

ListenServer spawn_listen_serve(int port, const std::string& tag) {
  ListenServer server;
  const std::string port_file = "supervisor_listen_" + tag + ".port";
  std::remove(port_file.c_str());
  server.process = std::make_unique<ProcessChild>(std::vector<std::string>{
      serve_bin(), "--listen", "127.0.0.1:" + std::to_string(port),
      "--port-file", port_file, "--stream", "--workers", "1"});
  for (int spin = 0; spin < 10000 && server.port == 0; ++spin) {
    std::ifstream pf(port_file);
    if (!(pf >> server.port)) {
      server.port = 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  std::remove(port_file.c_str());
  return server;
}

TEST(SupervisorFleet, RemoteShardIsRedialedAfterItsServerRestarts) {
  if (!serve_bin()) GTEST_SKIP() << "saim_serve not built";
  auto remote = spawn_listen_serve(0, "reconnect_a");
  ASSERT_GT(remote.port, 0) << "listen server never reported its port";

  RouterOptions router_options;
  router_options.shards = 2;
  router_options.window = 4;
  ShardRouter router(router_options);
  Supervisor supervisor(router, fast_supervisor_options());
  supervisor.attach_local(0);
  supervisor.attach_remote(1, "127.0.0.1", remote.port);
  ASSERT_FALSE(supervisor.is_local(1));

  std::vector<std::string> out;
  std::size_t line_no = 0;
  feed_jobs(router, &out, &line_no, 1, 6, 25, 300);
  ASSERT_GT(router.inflight(1) + router.pending(1), 0u)
      << "no job routed to the remote shard; the crash would be invisible";

  // Mid-stream, with results flowing, the remote server dies — taking
  // the TCP session down with it ...
  for (int spin = 0; spin < 10000 && out.size() < 2; ++spin) {
    for (auto& l : supervisor.pump(2)) out.push_back(std::move(l));
  }
  ASSERT_GE(out.size(), 2u);
  remote.process->terminate();

  // ... and its operator brings a replacement up on the same address.
  // The supervisor cannot respawn it (it owns no remote processes), but
  // it must redial the endpoint and put slot 1 back on the ring.
  auto replacement = spawn_listen_serve(remote.port, "reconnect_b");
  ASSERT_EQ(replacement.port, remote.port);

  for (auto& l : pump_to_idle(router, supervisor,
                              [&] { return router.live_shards() == 2; })) {
    out.push_back(std::move(l));
  }

  expect_exactly_once(out, 12);
  EXPECT_TRUE(router.alive(1));
  EXPECT_EQ(router.live_shards(), 2u);
  EXPECT_GE(supervisor.stats().remote_reconnects, 1u);
  EXPECT_EQ(supervisor.stats().respawns, 0u)
      << "a redial must not be booked as a local re-exec";
  EXPECT_FALSE(router.any_error());
  supervisor.shutdown_fleet();
  // Teardown closes only our session; the servers belong to their
  // operator (this test), which stops the survivor explicitly.
  replacement.process->terminate();
}

TEST(SupervisorFleet, SoleShardCrashHoldsJobsInsteadOfOrphaning) {
  if (!serve_bin()) GTEST_SKIP() << "saim_serve not built";
  RouterOptions router_options;
  router_options.shards = 1;
  router_options.window = 4;
  ShardRouter router(router_options);
  Supervisor supervisor(router, fast_supervisor_options());
  supervisor.attach_local(0);

  std::vector<std::string> out;
  std::size_t line_no = 0;
  feed_jobs(router, &out, &line_no, 1, 3, 25, 300);

  for (int spin = 0; spin < 10000 && out.empty(); ++spin) {
    for (auto& l : supervisor.pump(2)) out.push_back(std::move(l));
  }
  ASSERT_GT(router.outstanding(), 0u);
  supervisor.endpoint(0)->terminate();

  for (auto& l : pump_to_idle(router, supervisor)) out.push_back(std::move(l));

  // With nowhere to fail over, PR 4 would have orphaned every unanswered
  // job; the supervisor instead held them and replayed into the
  // replacement — zero errors, zero orphans.
  expect_exactly_once(out, 6);
  EXPECT_EQ(router.stats().orphaned, 0u);
  EXPECT_GT(router.stats().requeued, 0u);
  EXPECT_GE(supervisor.stats().respawns, 1u);
  EXPECT_EQ(router.live_shards(), 1u);
  supervisor.shutdown_fleet();
}

TEST(SupervisorFleet, Reshard2To4To1UnderLoadLosesNothing) {
  if (!serve_bin()) GTEST_SKIP() << "saim_serve not built";
  RouterOptions router_options;
  router_options.shards = 2;
  router_options.window = 4;
  ShardRouter router(router_options);
  Supervisor supervisor(router, fast_supervisor_options());
  supervisor.attach_local(0);
  supervisor.attach_local(1);

  std::vector<std::string> out;
  std::size_t line_no = 0;
  feed_jobs(router, &out, &line_no, 1, 4, 20, 200);

  // Grow to 4 with the first wave still in flight.
  for (int spin = 0; spin < 200; ++spin) {
    for (auto& l : supervisor.pump(2)) out.push_back(std::move(l));
  }
  EXPECT_EQ(supervisor.reshard(4), 4u);
  feed_jobs(router, &out, &line_no, 5, 8, 20, 200);

  // Shrink to 1 with the second wave still in flight.
  for (int spin = 0; spin < 200; ++spin) {
    for (auto& l : supervisor.pump(2)) out.push_back(std::move(l));
  }
  EXPECT_EQ(supervisor.reshard(1), 1u);
  feed_jobs(router, &out, &line_no, 9, 10, 20, 200);

  for (auto& l : pump_to_idle(router, supervisor)) out.push_back(std::move(l));

  expect_exactly_once(out, 20);
  EXPECT_EQ(router.stats().orphaned, 0u);
  EXPECT_EQ(supervisor.stats().reshards, 2u);
  EXPECT_EQ(supervisor.stats().retired, 3u);
  EXPECT_EQ(supervisor.desired_locals(), 1u);
  EXPECT_FALSE(router.any_error());
  supervisor.shutdown_fleet();
}

TEST(SupervisorFleet, WarmHandoffSeedsTheNewOwnerOnGrow) {
  if (!serve_bin()) GTEST_SKIP() << "saim_serve not built";
  RouterOptions router_options;
  router_options.shards = 1;
  ShardRouter router(router_options);
  Supervisor supervisor(router, fast_supervisor_options());
  supervisor.attach_local(0);

  // Cold wave over many instances: shard 0's warm pool fills with the
  // best feasible configurations per problem fingerprint.
  std::vector<std::string> out;
  std::size_t line_no = 0;
  for (int k = 1; k <= 12; ++k) {
    out = router.accept_line(
        "{\"id\":\"cold" + std::to_string(k) + "\",\"gen\":\"qkp:30-25-" +
            std::to_string(k) + "\",\"iterations\":20,\"sweeps\":200}",
        ++line_no);
    ASSERT_TRUE(out.empty());
  }
  std::vector<std::string> cold;
  for (auto& l : pump_to_idle(router, supervisor)) cold.push_back(std::move(l));
  ASSERT_EQ(cold.size(), 12u);
  std::set<int> feasible;
  for (const auto& line : cold) {
    const auto v = util::parse_json(line);
    if (v.find("found_feasible")->as_bool()) {
      const auto id = v.find("id")->as_string();
      feasible.insert(std::stoi(id.substr(4)));
    }
  }
  ASSERT_FALSE(feasible.empty()) << "no cold job found a feasible sample";

  // Grow: shard 1 joins; the supervisor probes shard 0's pool and
  // forwards the entries shard 1 now owns.
  ASSERT_EQ(supervisor.reshard(2), 2u);

  // A feasible instance whose key moved to the new shard.
  int moved_k = 0;
  for (const int k : feasible) {
    const auto request = request_for(std::make_shared<problems::QkpInstance>(
        problems::make_paper_qkp(30, 25, k)));
    if (router.owner_of(problems::fingerprint(*request.problem)) == 1) {
      moved_k = k;
      break;
    }
  }
  ASSERT_NE(moved_k, 0) << "no feasible instance moved to the new shard "
                           "(would need more instances)";

  // Let the export -> forward -> import round trip complete.
  for (int spin = 0;
       spin < 20000 && supervisor.stats().warm_forwarded == 0; ++spin) {
    (void)supervisor.pump(2);
  }
  ASSERT_GT(supervisor.stats().warm_forwarded, 0u)
      << "the donor's pool entries never reached the new owner";

  // A warm job on the moved instance runs on shard 1 — which never
  // executed it — and still starts warm: the handoff carried the pool.
  // (The import_warm line was queued on shard 1's pipe before this job,
  // so ordering is guaranteed by the transport.)
  out = router.accept_line(
      "{\"id\":\"w\",\"gen\":\"qkp:30-25-" + std::to_string(moved_k) +
          "\",\"iterations\":5,\"sweeps\":100,\"seed\":77,"
          "\"warm_start\":true}",
      ++line_no);
  ASSERT_TRUE(out.empty());
  std::vector<std::string> warm_out;
  for (auto& l : pump_to_idle(router, supervisor)) {
    warm_out.push_back(std::move(l));
  }
  ASSERT_EQ(warm_out.size(), 1u);
  const auto warm_line = util::parse_json(warm_out[0]);
  EXPECT_EQ(warm_line.find("id")->as_string(), "w");
  EXPECT_TRUE(warm_line.find("warm_started")->as_bool())
      << warm_out[0] << " — the new owner should have imported the pool";
  supervisor.shutdown_fleet();
}

TEST(SupervisorFleet, ChaosSigkillWithReplicationCompletesWithZeroStall) {
  if (!serve_bin()) GTEST_SKIP() << "saim_serve not built";
  // R=2 with hedging on: when the owner is SIGKILLed mid-stream, its
  // hedged jobs are promoted to the replica copies already running and
  // the rest fail over — nothing waits for the respawn. The respawn
  // backoff is set absurdly high so a single stalled job would hang the
  // test: 12/12 completing proves completion never depended on it.
  RouterOptions router_options;
  router_options.shards = 2;
  router_options.window = 4;
  router_options.replicas = 2;
  router_options.hedge_min_ms = 5.0;
  ShardRouter router(router_options);
  SupervisorOptions supervisor_options = fast_supervisor_options();
  supervisor_options.backoff_initial_ms = 60000;
  supervisor_options.backoff_max_ms = 60000;
  Supervisor supervisor(router, supervisor_options);
  supervisor.attach_local(0);
  supervisor.attach_local(1);

  std::vector<std::string> out;
  std::size_t line_no = 0;
  feed_jobs(router, &out, &line_no, 1, 6, 25, 300);
  ASSERT_GT(router.pending(0), 0u);
  ASSERT_GT(router.pending(1), 0u);

  for (int spin = 0; spin < 10000 && out.size() < 2; ++spin) {
    for (auto& l : supervisor.pump(2)) out.push_back(std::move(l));
  }
  ASSERT_GE(out.size(), 2u);
  const std::size_t victim =
      router.inflight(0) + router.pending(0) >=
              router.inflight(1) + router.pending(1)
          ? 0
          : 1;
  ASSERT_GT(router.inflight(victim) + router.pending(victim), 0u);
  supervisor.endpoint(victim)->terminate();  // SIGKILL

  for (auto& l : pump_to_idle(router, supervisor)) out.push_back(std::move(l));

  expect_exactly_once(out, 12);
  EXPECT_EQ(supervisor.stats().respawns, 0u)
      << "a respawn happened: completion may have stalled on it";
  EXPECT_FALSE(router.alive(victim));
  EXPECT_EQ(router.live_shards(), 1u);
  EXPECT_EQ(router.stats().orphaned, 0u);
  EXPECT_FALSE(router.any_error());
  supervisor.shutdown_fleet();
}

TEST(SupervisorFleet, GossipWarmsReplicasWithoutAnyMembershipChange) {
  if (!serve_bin()) GTEST_SKIP() << "saim_serve not built";
  // Replication satellite: with gossip_ms set, warm-pool entries reach
  // every member of their replica set on a timer — no reshard, respawn or
  // other membership event required. Proof: warm_forwarded grows while
  // reshards == respawns == 0; then the owner dies and a warm job on the
  // survivor still starts warm, although the survivor never solved the
  // instance and the dead owner can no longer export anything.
  RouterOptions router_options;
  router_options.shards = 2;
  router_options.replicas = 2;
  ShardRouter router(router_options);
  SupervisorOptions supervisor_options = fast_supervisor_options();
  supervisor_options.gossip_ms = 5;
  supervisor_options.backoff_initial_ms = 60000;
  supervisor_options.backoff_max_ms = 60000;
  Supervisor supervisor(router, supervisor_options);
  supervisor.attach_local(0);
  supervisor.attach_local(1);

  // Cold wave over many instances: each owner's pool fills with the best
  // feasible configurations for its keyslice.
  std::vector<std::string> out;
  std::size_t line_no = 0;
  for (int k = 1; k <= 12; ++k) {
    ASSERT_TRUE(router
                    .accept_line("{\"id\":\"cold" + std::to_string(k) +
                                     "\",\"gen\":\"qkp:30-25-" +
                                     std::to_string(k) +
                                     "\",\"iterations\":20,\"sweeps\":200}",
                                 ++line_no)
                    .empty());
  }
  std::vector<std::string> cold;
  for (auto& l : pump_to_idle(router, supervisor)) cold.push_back(std::move(l));
  ASSERT_EQ(cold.size(), 12u);
  std::set<int> feasible;
  for (const auto& line : cold) {
    const auto v = util::parse_json(line);
    if (v.find("found_feasible")->as_bool()) {
      feasible.insert(std::stoi(v.find("id")->as_string().substr(4)));
    }
  }
  ASSERT_FALSE(feasible.empty()) << "no cold job found a feasible sample";

  // Idle gossip rounds replicate the pools across the fleet.
  for (int spin = 0;
       spin < 20000 && supervisor.stats().warm_forwarded == 0; ++spin) {
    (void)supervisor.pump(2);
  }
  ASSERT_GT(supervisor.stats().warm_forwarded, 0u)
      << "gossip never moved a pool entry";
  EXPECT_EQ(supervisor.stats().reshards, 0u);
  EXPECT_EQ(supervisor.stats().respawns, 0u);

  // Kill a feasible instance's owner. Its pool dies with it, so any
  // warmth the survivor shows below must have arrived via gossip.
  const int moved_k = *feasible.begin();
  const auto request = request_for(std::make_shared<problems::QkpInstance>(
      problems::make_paper_qkp(30, 25, moved_k)));
  const std::size_t owner =
      router.owner_of(problems::fingerprint(*request.problem));
  supervisor.endpoint(owner)->terminate();
  for (int spin = 0; spin < 20000 && router.live_shards() == 2; ++spin) {
    (void)supervisor.pump(2);
  }
  ASSERT_EQ(router.live_shards(), 1u);

  ASSERT_TRUE(router
                  .accept_line("{\"id\":\"w\",\"gen\":\"qkp:30-25-" +
                                   std::to_string(moved_k) +
                                   "\",\"iterations\":5,\"sweeps\":100,"
                                   "\"seed\":77,\"warm_start\":true}",
                               ++line_no)
                  .empty());
  std::vector<std::string> warm_out;
  for (auto& l : pump_to_idle(router, supervisor)) {
    warm_out.push_back(std::move(l));
  }
  ASSERT_EQ(warm_out.size(), 1u);
  const auto warm_line = util::parse_json(warm_out[0]);
  EXPECT_EQ(warm_line.find("id")->as_string(), "w");
  EXPECT_TRUE(warm_line.find("warm_started")->as_bool())
      << warm_out[0] << " — gossip should have warmed the replica";
  supervisor.shutdown_fleet();
}

TEST(SupervisorFleet, GracefulShutdownReapsEveryChild) {
  if (!serve_bin()) GTEST_SKIP() << "saim_serve not built";
  RouterOptions router_options;
  router_options.shards = 2;
  ShardRouter router(router_options);
  Supervisor supervisor(router, fast_supervisor_options());
  supervisor.attach_local(0);
  supervisor.attach_local(1);

  std::vector<std::string> out;
  std::size_t line_no = 0;
  for (auto& l : router.accept_line(job_line("a", 1, 1), ++line_no)) {
    out.push_back(std::move(l));
  }
  for (auto& l : pump_to_idle(router, supervisor)) out.push_back(std::move(l));
  ASSERT_EQ(out.size(), 1u);

  std::vector<pid_t> pids;
  for (std::size_t s = 0; s < 2; ++s) {
    auto* child = dynamic_cast<ProcessChild*>(supervisor.endpoint(s));
    ASSERT_NE(child, nullptr);
    pids.push_back(child->pid());
  }
  supervisor.shutdown_fleet();
  // Reaped means GONE: a zombie would still answer kill(pid, 0) with 0.
  for (const pid_t pid : pids) {
    EXPECT_EQ(::kill(pid, 0), -1);
    EXPECT_EQ(errno, ESRCH) << "child " << pid << " was not reaped";
  }
}

// --------------------------------- warm handoff protocol (serve <-> serve)

/// Sends `lines` to a fresh saim_serve and returns everything it printed
/// until EOF (stdin closed after the send).
std::vector<std::string> converse(
    ProcessChild& serve, const std::vector<std::string>& lines) {
  for (const auto& line : lines) serve.send_line(line);
  for (int spin = 0; spin < 10000 && serve.outbound_bytes() > 0; ++spin) {
    serve.pump_writes();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  serve.close_stdin();
  std::vector<std::string> out;
  for (int spin = 0; spin < 20000 && !serve.eof(); ++spin) {
    for (auto& l : serve.read_lines()) out.push_back(std::move(l));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& l : serve.read_lines()) out.push_back(std::move(l));
  return out;
}

TEST(WarmHandoffProtocol, ExportedPoolImportsIntoASiblingProcess) {
  if (!serve_bin()) GTEST_SKIP() << "saim_serve not built";
  // Process A: two feasible jobs fill the pool; drain certifies both
  // deposited before export_warm snapshots it.
  ProcessChild a(std::vector<std::string>{serve_bin(), "--stream",
                                          "--workers", "1"});
  const auto a_out = converse(
      a, {R"({"id":"j1","gen":"qkp:40-25-1","iterations":20,"sweeps":200,"seed":1})",
          R"({"id":"j2","gen":"qkp:40-25-1","iterations":20,"sweeps":200,"seed":2})",
          R"({"cmd":"drain"})", R"({"cmd":"export_warm","id":"x"})"});
  std::string warm_payload;
  bool any_feasible = false;
  for (const auto& line : a_out) {
    const auto v = util::parse_json(line);
    if (const auto* warm = v.find("warm")) warm_payload = util::to_json(*warm);
    if (const auto* f = v.find("found_feasible")) {
      any_feasible = any_feasible || f->as_bool();
    }
  }
  ASSERT_FALSE(warm_payload.empty());
  if (!any_feasible) GTEST_SKIP() << "no feasible sample to hand off";
  ASSERT_NE(warm_payload, "{}") << "feasible jobs must deposit to the pool";

  // Process B: import the snapshot, then run a warm job over the same
  // instance — it must report warm_started although B never solved it.
  ProcessChild b(std::vector<std::string>{serve_bin(), "--stream",
                                          "--workers", "1"});
  const auto b_out = converse(
      b, {std::string(R"({"cmd":"import_warm","id":"imp","warm":)") +
              warm_payload + "}",
          R"({"id":"w","gen":"qkp:40-25-1","iterations":5,"sweeps":100,"seed":9,"warm_start":true})"});
  bool imported_some = false;
  bool warm_started = false;
  for (const auto& line : b_out) {
    const auto v = util::parse_json(line);
    if (const auto* imported = v.find("imported")) {
      imported_some = imported->as_int() > 0;
    }
    if (v.find("id") && v.find("id")->as_string() == "w") {
      warm_started = v.find("warm_started")->as_bool();
    }
  }
  EXPECT_TRUE(imported_some);
  EXPECT_TRUE(warm_started);
}

// ------------------------------------------------------------ fleet stats

TEST(SupervisorFleet, FleetStatsAggregatesEveryShardSnapshot) {
  if (!serve_bin()) GTEST_SKIP() << "saim_serve not built";
  RouterOptions router_options;
  router_options.shards = 2;
  ShardRouter router(router_options);
  Supervisor supervisor(router, fast_supervisor_options());
  supervisor.attach_local(0);
  supervisor.attach_local(1);

  // Run real jobs through both shards so the round-trip latency
  // histograms and the children's own service counters are non-empty.
  std::vector<std::string> out;
  std::size_t line_no = 0;
  feed_jobs(router, &out, &line_no, 1, 6, 2, 30);
  for (auto& l : pump_to_idle(router, supervisor)) out.push_back(std::move(l));
  expect_exactly_once(out, 12);

  supervisor.request_fleet_stats("fs1");
  std::string fleet_line;
  for (int spin = 0; spin < 20000 && fleet_line.empty(); ++spin) {
    for (auto& l : supervisor.pump(2)) {
      if (l.find("\"fleet\"") != std::string::npos) fleet_line = std::move(l);
    }
  }
  ASSERT_FALSE(fleet_line.empty()) << "no fleet snapshot within the deadline";

  const auto v = util::parse_json(fleet_line);
  EXPECT_EQ(v.find("id")->as_string(), "fs1");
  const auto* fleet = v.find("fleet");
  ASSERT_NE(fleet, nullptr);
  EXPECT_EQ(fleet->find("live_shards")->as_int(), 2);
  EXPECT_EQ(fleet->find("shard_slots")->as_int(), 2);

  const auto* router_obj = fleet->find("router");
  ASSERT_NE(router_obj, nullptr);
  EXPECT_EQ(router_obj->find("accepted")->as_int(), 12);
  EXPECT_EQ(router_obj->find("outstanding")->as_int(), 0);

  const auto* sup = fleet->find("supervisor");
  ASSERT_NE(sup, nullptr);
  for (const char* key : {"respawns", "remote_reconnects", "respawn_failures",
                          "reshards", "retired", "warm_forwarded",
                          "unresponsive_kills"}) {
    ASSERT_NE(sup->find(key), nullptr) << key;
  }

  // Per-shard: queue depth, inflight, restart count, latency quantiles,
  // and the shard's own service snapshot (both answered: no nulls).
  const auto* shards = fleet->find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->array().size(), 2u);
  std::uint64_t latency_total = 0;
  for (std::size_t s = 0; s < 2; ++s) {
    const auto& shard = shards->array()[s];
    EXPECT_EQ(shard.find("shard")->as_int(), static_cast<std::int64_t>(s));
    EXPECT_TRUE(shard.find("alive")->as_bool());
    EXPECT_TRUE(shard.find("local")->as_bool());
    EXPECT_EQ(shard.find("restarts")->as_int(), 0);
    EXPECT_EQ(shard.find("queue_depth")->as_int(), 0);
    EXPECT_EQ(shard.find("inflight")->as_int(), 0);

    const auto* latency = shard.find("latency");
    ASSERT_NE(latency, nullptr);
    latency_total += static_cast<std::uint64_t>(
        latency->find("count")->as_int());
    EXPECT_GE(latency->find("p99_ms")->as_double(),
              latency->find("p50_ms")->as_double());

    const auto* service = shard.find("service");
    ASSERT_NE(service, nullptr);
    ASSERT_FALSE(service->is_null())
        << "both live shards must answer the stats probe";
    EXPECT_GE(service->find("completed")->as_int(), 1);
    ASSERT_NE(service->find("cache"), nullptr);
    EXPECT_NE(service->find("cache")->find("hit_rate"), nullptr);
  }
  EXPECT_EQ(latency_total, 12u)
      << "every answered job must land in some shard's latency histogram";

  supervisor.shutdown_fleet();
}

}  // namespace
}  // namespace saim::service
