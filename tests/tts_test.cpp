#include "core/tts.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace saim::core {
namespace {

TEST(Tts, ZeroSuccessesIsUndefined) {
  const auto e = time_to_solution(0, 100, 1.0);
  EXPECT_FALSE(e.defined);
  EXPECT_TRUE(std::isinf(e.tts));
  EXPECT_DOUBLE_EQ(e.success_probability, 0.0);
}

TEST(Tts, CertainSuccessIsOneRun) {
  const auto e = time_to_solution(50, 50, 2.5);
  EXPECT_TRUE(e.defined);
  EXPECT_TRUE(e.certain);
  EXPECT_DOUBLE_EQ(e.expected_restarts, 1.0);
  EXPECT_DOUBLE_EQ(e.tts, 2.5);
}

TEST(Tts, TextbookHalfProbability) {
  // p = 0.5, q = 0.99: restarts = ln(0.01)/ln(0.5) ~ 6.64.
  const auto e = time_to_solution(50, 100, 1.0);
  EXPECT_NEAR(e.expected_restarts, std::log(0.01) / std::log(0.5), 1e-12);
  EXPECT_NEAR(e.tts, 6.6438561898, 1e-6);
}

TEST(Tts, HighProbabilityClampsToOneRun) {
  // p = 0.999: formula would give < 1 restart; clamp to 1.
  const auto e = time_to_solution(999, 1000, 3.0);
  EXPECT_DOUBLE_EQ(e.expected_restarts, 1.0);
  EXPECT_DOUBLE_EQ(e.tts, 3.0);
}

TEST(Tts, ScalesLinearlyWithRunCost) {
  const auto a = time_to_solution(10, 100, 1.0);
  const auto b = time_to_solution(10, 100, 7.0);
  EXPECT_NEAR(b.tts, 7.0 * a.tts, 1e-9);
}

TEST(Tts, QuantileMonotonicity) {
  const auto q90 = time_to_solution(10, 100, 1.0, 0.90);
  const auto q99 = time_to_solution(10, 100, 1.0, 0.99);
  EXPECT_LT(q90.tts, q99.tts);
}

TEST(Tts, InvalidInputsThrow) {
  EXPECT_THROW(time_to_solution(1, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(time_to_solution(5, 4, 1.0), std::invalid_argument);
  EXPECT_THROW(time_to_solution(1, 10, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(time_to_solution(1, 10, 1.0, 1.0), std::invalid_argument);
}

TEST(Tts, FromCostsCountsSuccesses) {
  // Negative costs (knapsack convention); target -100.
  const std::vector<double> costs = {-100.0, -99.0, -101.0, -50.0, -100.0};
  const auto e = time_to_solution_from_costs(costs, -100.0, 2.0);
  EXPECT_DOUBLE_EQ(e.success_probability, 3.0 / 5.0);
}

TEST(Tts, FromCostsToleranceApplies) {
  const std::vector<double> costs = {-99.9999999};
  const auto strict = time_to_solution_from_costs(costs, -100.0, 1.0, 0.99,
                                                  0.0);
  EXPECT_FALSE(strict.defined);
  const auto loose = time_to_solution_from_costs(costs, -100.0, 1.0, 0.99,
                                                 1e-3);
  EXPECT_TRUE(loose.defined);
}

// Property sweep: restarts decrease monotonically in success probability.
class TtsMonotone : public ::testing::TestWithParam<int> {};

TEST_P(TtsMonotone, MoreSuccessesNeverMoreRestarts) {
  const int s = GetParam();
  const auto low = time_to_solution(static_cast<std::size_t>(s), 100, 1.0);
  const auto high =
      time_to_solution(static_cast<std::size_t>(s) + 10, 100, 1.0);
  EXPECT_LE(high.expected_restarts, low.expected_restarts + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(SuccessCounts, TtsMonotone,
                         ::testing::Values(1, 5, 10, 25, 50, 75, 89));

}  // namespace
}  // namespace saim::core
