#include "core/penalty_method.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "problems/mkp.hpp"
#include "problems/qkp.hpp"
#include "util/csv.hpp"

namespace saim::core {
namespace {

anneal::PBitBackend small_backend(std::size_t sweeps = 150) {
  return anneal::PBitBackend(pbit::Schedule::linear(10.0), sweeps);
}

TEST(PenaltyMethod, EquivalentToSaimWithZeroEta) {
  const auto inst = problems::make_paper_qkp(12, 50, 1);
  const auto mapping = problems::qkp_to_problem(inst);
  const auto eval = make_qkp_evaluator(inst);

  auto backend1 = small_backend();
  PenaltyOptions popts;
  popts.runs = 25;
  popts.penalty_alpha = 2.0;
  popts.seed = 5;
  const auto penalty =
      solve_penalty_method(mapping.problem, backend1, popts, eval);

  auto backend2 = small_backend();
  SaimOptions sopts;
  sopts.iterations = 25;
  sopts.eta = 0.0;
  sopts.penalty_alpha = 2.0;
  sopts.seed = 5;
  SaimSolver saim(mapping.problem, backend2, sopts);
  const auto zero_eta = saim.solve(eval);

  EXPECT_EQ(penalty.best_cost, zero_eta.best_cost);
  EXPECT_EQ(penalty.feasible_count, zero_eta.feasible_count);
  EXPECT_EQ(penalty.best_x, zero_eta.best_x);
}

TEST(PenaltyMethod, LargerPenaltyRaisesFeasibility) {
  // The paper observes "on average, a large P value implies a feasibility
  // increase". Check the trend on a small instance with a big gap in P.
  const auto inst = problems::make_paper_qkp(20, 50, 2);
  const auto mapping = problems::qkp_to_problem(inst);
  const auto eval = make_qkp_evaluator(inst);

  auto run_with_alpha = [&](double alpha) {
    auto backend = small_backend();
    PenaltyOptions opts;
    opts.runs = 40;
    opts.penalty_alpha = alpha;
    opts.seed = 7;
    return solve_penalty_method(mapping.problem, backend, opts, eval)
        .feasibility_rate();
  };
  const double small_p = run_with_alpha(0.1);
  const double large_p = run_with_alpha(100.0);
  EXPECT_GE(large_p, small_p);
  EXPECT_GT(large_p, 0.5);  // strong penalties should make most runs feasible
}

TEST(TunePenalty, StopsAtFirstRungReachingTarget) {
  const auto inst = problems::make_paper_qkp(15, 50, 3);
  const auto mapping = problems::qkp_to_problem(inst);
  const auto eval = make_qkp_evaluator(inst);
  auto backend = small_backend();

  PenaltyTuningOptions opts;
  opts.alpha_ladder = {0.01, 200.0};
  opts.target_feasibility = 0.2;
  opts.probe_runs = 15;
  opts.seed = 2;
  const auto tuning = tune_penalty(mapping.problem, backend, opts, eval);
  // The 200dN rung should reach 20% feasibility on this instance.
  EXPECT_DOUBLE_EQ(tuning.alpha, 200.0);
  EXPECT_GE(tuning.feasibility, 0.2);
  ASSERT_LE(tuning.probes.size(), 2u);
  EXPECT_GT(tuning.total_sweeps, 0u);
}

TEST(TunePenalty, FallsBackToBestRungWhenTargetUnreachable) {
  const auto inst = problems::make_paper_qkp(15, 50, 4);
  const auto mapping = problems::qkp_to_problem(inst);
  const auto eval = make_qkp_evaluator(inst);
  auto backend = small_backend();

  PenaltyTuningOptions opts;
  opts.alpha_ladder = {0.001, 0.002};
  opts.target_feasibility = 1.01;  // unreachable by construction
  opts.probe_runs = 10;
  const auto tuning = tune_penalty(mapping.problem, backend, opts, eval);
  EXPECT_EQ(tuning.probes.size(), 2u);
  EXPECT_TRUE(tuning.alpha == 0.001 || tuning.alpha == 0.002);
  // Penalty must correspond to the chosen alpha.
  EXPECT_NEAR(tuning.penalty,
              lagrange::heuristic_penalty(mapping.problem, tuning.alpha),
              1e-12);
}

TEST(Evaluators, QkpJudgesDecisionBitsOnly) {
  const auto inst = problems::make_paper_qkp(10, 50, 6);
  const auto eval = make_qkp_evaluator(inst);
  // Feed a slack-extended vector: all decision bits zero -> feasible, cost 0
  // regardless of slack bits.
  std::vector<std::uint8_t> x(inst.n() + 5, 0);
  x[inst.n()] = 1;  // slack bit set; must be ignored
  const auto v = eval(x);
  EXPECT_TRUE(v.feasible);
  EXPECT_DOUBLE_EQ(v.cost, 0.0);
}

TEST(Evaluators, MkpJudgesAllConstraints) {
  const problems::MkpInstance inst("t", {5, 6}, {3, 3, 10, 1}, {3, 10});
  const auto eval = make_mkp_evaluator(inst);
  std::vector<std::uint8_t> x = {1, 1};  // loads {6,11} violate both
  EXPECT_FALSE(eval(x).feasible);
  x = {1, 0};  // loads {3,10} fit exactly
  const auto v = eval(x);
  EXPECT_TRUE(v.feasible);
  EXPECT_DOUBLE_EQ(v.cost, -5.0);
}

TEST(WriteHistoryCsv, ProducesHeaderAndRows) {
  std::vector<IterationRecord> history(2);
  history[0].iteration = 0;
  history[0].sample_cost = -5.0;
  history[0].feasible = true;
  history[0].lambda = {0.0, 1.0};
  history[1].iteration = 1;
  history[1].sample_cost = -6.0;
  history[1].lambda = {0.5, 1.5};

  util::CsvWriter csv;
  write_history_csv(csv, history);
  const std::string& out = csv.buffer();
  EXPECT_NE(out.find("iteration,cost,feasible"), std::string::npos);
  EXPECT_NE(out.find("lambda_1"), std::string::npos);
  // Two data rows + header = 3 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(WriteHistoryCsv, EmptyHistoryWritesNothing) {
  util::CsvWriter csv;
  write_history_csv(csv, {});
  EXPECT_TRUE(csv.buffer().empty());
}

}  // namespace
}  // namespace saim::core
