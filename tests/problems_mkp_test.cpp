#include "problems/mkp.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.hpp"

namespace saim::problems {
namespace {

MkpInstance tiny_instance() {
  // 3 items, 2 knapsacks. values 6,10,12; A = [[1,2,3],[4,2,1]]; B = [4,5].
  return MkpInstance("tiny", {6, 10, 12}, {1, 2, 3, 4, 2, 1}, {4, 5});
}

TEST(MkpInstance, ProfitAndCost) {
  const auto inst = tiny_instance();
  EXPECT_EQ(inst.profit(std::vector<std::uint8_t>{1, 1, 0}), 16);
  EXPECT_EQ(inst.cost(std::vector<std::uint8_t>{1, 1, 0}), -16);
}

TEST(MkpInstance, LoadPerKnapsack) {
  const auto inst = tiny_instance();
  const std::vector<std::uint8_t> x = {1, 0, 1};
  EXPECT_EQ(inst.load(0, x), 4);
  EXPECT_EQ(inst.load(1, x), 5);
}

TEST(MkpInstance, FeasibilityRequiresAllConstraints) {
  const auto inst = tiny_instance();
  EXPECT_TRUE(inst.feasible(std::vector<std::uint8_t>{1, 0, 1}));   // 4,5
  EXPECT_FALSE(inst.feasible(std::vector<std::uint8_t>{1, 1, 0}));  // 3,6>5
  EXPECT_FALSE(inst.feasible(std::vector<std::uint8_t>{1, 1, 1}));
  EXPECT_TRUE(inst.feasible(std::vector<std::uint8_t>{0, 0, 0}));
}

TEST(MkpInstance, WeightAccessors) {
  const auto inst = tiny_instance();
  EXPECT_EQ(inst.weight(1, 0), 4);
  EXPECT_EQ(inst.weight_row(0)[2], 3);
  EXPECT_THROW(inst.weight(2, 0), std::out_of_range);
  EXPECT_THROW(inst.weight_row(5), std::out_of_range);
}

TEST(MkpInstance, ValidationRejectsBadShapes) {
  EXPECT_THROW(MkpInstance("x", {1, 2}, {1, 2, 3}, {4}),
               std::invalid_argument);  // A not m*n
  EXPECT_THROW(MkpInstance("x", {1}, {1}, {-4}),
               std::invalid_argument);  // negative capacity
  EXPECT_THROW(MkpInstance("x", {1}, {-1}, {4}),
               std::invalid_argument);  // negative weight
}

TEST(MkpGenerator, DeterministicPerSeed) {
  MkpGeneratorParams p;
  p.n = 25;
  p.m = 4;
  p.seed = 5;
  const auto a = generate_mkp(p);
  const auto b = generate_mkp(p);
  for (std::size_t i = 0; i < p.m; ++i) {
    EXPECT_EQ(a.capacity(i), b.capacity(i));
    for (std::size_t j = 0; j < p.n; ++j) {
      EXPECT_EQ(a.weight(i, j), b.weight(i, j));
    }
  }
}

TEST(MkpGenerator, TightnessControlsCapacity) {
  MkpGeneratorParams p;
  p.n = 60;
  p.m = 3;
  p.seed = 2;
  p.tightness = 0.5;
  const auto inst = generate_mkp(p);
  for (std::size_t i = 0; i < p.m; ++i) {
    std::int64_t row_sum = 0;
    for (std::size_t j = 0; j < p.n; ++j) row_sum += inst.weight(i, j);
    EXPECT_NEAR(static_cast<double>(inst.capacity(i)),
                0.5 * static_cast<double>(row_sum),
                1.0);  // floor rounding
  }
}

TEST(MkpGenerator, ValuesCorrelateWithWeights) {
  // Chu–Beasley values = mean column weight + U[0,500]; so value minus the
  // mean column weight must lie in [0, 500].
  MkpGeneratorParams p;
  p.n = 40;
  p.m = 5;
  p.seed = 9;
  const auto inst = generate_mkp(p);
  for (std::size_t j = 0; j < p.n; ++j) {
    std::int64_t col = 0;
    for (std::size_t i = 0; i < p.m; ++i) col += inst.weight(i, j);
    const std::int64_t base = col / static_cast<std::int64_t>(p.m);
    const std::int64_t noise = inst.value(j) - base;
    EXPECT_GE(noise, 0);
    EXPECT_LE(noise, p.value_noise);
  }
}

TEST(MkpGenerator, InvalidParamsThrow) {
  MkpGeneratorParams p;
  p.n = 0;
  EXPECT_THROW(generate_mkp(p), std::invalid_argument);
  MkpGeneratorParams q;
  q.tightness = 0.0;
  EXPECT_THROW(generate_mkp(q), std::invalid_argument);
}

TEST(MakePaperMkp, NamingAndShape) {
  const auto inst = make_paper_mkp(100, 5, 8);
  EXPECT_EQ(inst.name(), "100-5-8");
  EXPECT_EQ(inst.n(), 100u);
  EXPECT_EQ(inst.m(), 5u);
}

TEST(MkpMapping, OneSlackEncodingPerKnapsack) {
  const auto inst = tiny_instance();
  const auto mapping = mkp_to_problem(inst);
  ASSERT_EQ(mapping.slack.size(), 2u);
  // Capacities 4 and 5 -> 3 slack bits each.
  EXPECT_EQ(mapping.slack[0].num_bits(), 3u);
  EXPECT_EQ(mapping.slack[1].num_bits(), 3u);
  EXPECT_EQ(mapping.problem.n(), 3u + 6u);
  EXPECT_EQ(mapping.problem.num_constraints(), 2u);
}

TEST(MkpMapping, LinearObjectiveHasNoCouplings) {
  const auto inst = tiny_instance();
  const auto mapping = mkp_to_problem(inst);
  EXPECT_EQ(mapping.problem.objective().nnz(), 0u);
  // Density falls back to the fixed-reference-spin convention 2/(N+1).
  const double n_total = static_cast<double>(mapping.problem.n());
  EXPECT_DOUBLE_EQ(mapping.problem.density_for_penalty(),
                   2.0 / (n_total + 1.0));
}

TEST(MkpMapping, SlackCompletionZeroesAllConstraints) {
  const auto inst = tiny_instance();
  const auto mapping = mkp_to_problem(inst);
  const std::vector<std::uint8_t> decision = {1, 0, 1};  // loads 4,5 = B
  std::vector<std::uint8_t> x = decision;
  for (std::size_t i = 0; i < inst.m(); ++i) {
    const std::int64_t gap = inst.capacity(i) - inst.load(i, decision);
    const auto bits = mapping.slack[i].encode(gap);
    x.insert(x.end(), bits.begin(), bits.end());
  }
  EXPECT_NEAR(mapping.problem.max_violation(x), 0.0, 1e-12);
}

TEST(MkpIo, SaveLoadRoundTrip) {
  const auto inst = make_paper_mkp(30, 4, 1);
  std::stringstream ss;
  save_mkp(ss, inst);
  const auto loaded = load_mkp(ss);
  EXPECT_EQ(loaded.name(), inst.name());
  EXPECT_EQ(loaded.n(), inst.n());
  EXPECT_EQ(loaded.m(), inst.m());
  for (std::size_t i = 0; i < inst.m(); ++i) {
    EXPECT_EQ(loaded.capacity(i), inst.capacity(i));
    for (std::size_t j = 0; j < inst.n(); ++j) {
      EXPECT_EQ(loaded.weight(i, j), inst.weight(i, j));
    }
  }
}

TEST(MkpIo, LoadRejectsGarbage) {
  std::stringstream ss("garbage");
  EXPECT_THROW(load_mkp(ss), std::runtime_error);
}

TEST(MkpMapping, CapacityShrinkTightensRows) {
  const auto inst = tiny_instance();  // capacities {4, 5}
  MkpLoweringOptions options;
  options.normalize = false;
  options.capacity_shrink = 0.6;
  const auto mapping = mkp_to_problem(inst, options);
  // B' = floor(0.6 * B): {2, 3}.
  ASSERT_EQ(mapping.effective_capacities.size(), 2u);
  EXPECT_EQ(mapping.effective_capacities[0], 2);
  EXPECT_EQ(mapping.effective_capacities[1], 3);
  EXPECT_DOUBLE_EQ(mapping.problem.constraints()[0].rhs, 2.0);
  EXPECT_DOUBLE_EQ(mapping.problem.constraints()[1].rhs, 3.0);
  // Slack encodings sized for B', not B.
  EXPECT_EQ(mapping.slack[0].num_bits(), 2u);  // bound 2 -> bits {1,2}
  EXPECT_EQ(mapping.slack[1].num_bits(), 2u);
}

TEST(MkpMapping, ShrinkOfOneIsIdentity) {
  const auto inst = tiny_instance();
  MkpLoweringOptions options;
  options.capacity_shrink = 1.0;
  const auto shrunk = mkp_to_problem(inst, options);
  const auto plain = mkp_to_problem(inst);
  EXPECT_EQ(shrunk.problem.n(), plain.problem.n());
  for (std::size_t i = 0; i < inst.m(); ++i) {
    EXPECT_DOUBLE_EQ(shrunk.problem.constraints()[i].rhs,
                     plain.problem.constraints()[i].rhs);
  }
}

TEST(MkpMapping, InvalidShrinkThrows) {
  const auto inst = tiny_instance();
  MkpLoweringOptions options;
  options.capacity_shrink = 0.0;
  EXPECT_THROW(mkp_to_problem(inst, options), std::invalid_argument);
  options.capacity_shrink = 1.5;
  EXPECT_THROW(mkp_to_problem(inst, options), std::invalid_argument);
}

TEST(MkpMapping, ShrunkEqualityImpliesTrueFeasibility) {
  // Any x satisfying the shrunken equality system (loads <= B') is a
  // fortiori feasible for the true capacities B — the basis of the
  // feasibility-boost trick.
  MkpGeneratorParams p;
  p.n = 12;
  p.m = 3;
  p.seed = 77;
  const auto inst = generate_mkp(p);
  MkpLoweringOptions options;
  options.capacity_shrink = 0.8;
  const auto mapping = mkp_to_problem(inst, options);
  util::Xoshiro256pp rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint8_t> decision(inst.n());
    for (auto& b : decision) b = rng.bernoulli(0.3) ? 1 : 0;
    bool fits_shrunk = true;
    for (std::size_t i = 0; i < inst.m(); ++i) {
      if (inst.load(i, decision) > mapping.effective_capacities[i]) {
        fits_shrunk = false;
      }
    }
    if (fits_shrunk) {
      EXPECT_TRUE(inst.feasible(decision));
    }
  }
}

// Property: mapped objective equals scaled raw cost and the greedy-feasible
// slack completion always zeroes every constraint.
class MkpMappingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MkpMappingProperty, MappingConsistentOnRandomSelections) {
  MkpGeneratorParams p;
  p.n = 15;
  p.m = 3;
  p.seed = GetParam();
  const auto inst = generate_mkp(p);
  const auto mapping = mkp_to_problem(inst);
  util::Xoshiro256pp rng(GetParam() + 11);

  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint8_t> decision(inst.n());
    for (auto& b : decision) b = rng.bernoulli(0.3) ? 1 : 0;
    if (!inst.feasible(decision)) continue;

    std::vector<std::uint8_t> x = decision;
    for (std::size_t i = 0; i < inst.m(); ++i) {
      const std::int64_t gap = inst.capacity(i) - inst.load(i, decision);
      const auto bits = mapping.slack[i].encode(gap);
      x.insert(x.end(), bits.begin(), bits.end());
    }
    EXPECT_NEAR(mapping.problem.max_violation(x), 0.0, 1e-9);
    EXPECT_NEAR(mapping.problem.objective_value(x) * mapping.objective_scale,
                static_cast<double>(inst.cost(decision)), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MkpMappingProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace saim::problems
