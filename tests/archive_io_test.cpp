// Readers for the official benchmark-archive formats: Billionnet–Soutif
// QKP files and OR-Library mknapcb MKP files. Verified against synthetic
// files written in the exact published layouts.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "problems/mkp.hpp"
#include "problems/qkp.hpp"

namespace saim::problems {
namespace {

/// Writes `content` to a temp file, removed on destruction.
class TempFile {
 public:
  TempFile(const std::string& name, const std::string& content)
      : path_(::testing::TempDir() + name) {
    std::ofstream os(path_);
    os << content;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

TEST(BillionnetIo, ParsesCanonicalLayout) {
  // 3 items: linear 10 20 30; triangle W01=5 W02=0 W12=7; type 0;
  // capacity 5; weights 2 3 4.
  std::stringstream ss(
      "jeu_100_25_1\n"
      "3\n"
      "10 20 30\n"
      "5 0\n"
      "7\n"
      "0\n"
      "5\n"
      "2 3 4\n");
  const auto inst = load_qkp_billionnet(ss);
  EXPECT_EQ(inst.name(), "jeu_100_25_1");
  EXPECT_EQ(inst.n(), 3u);
  EXPECT_EQ(inst.value(0), 10);
  EXPECT_EQ(inst.value(2), 30);
  EXPECT_EQ(inst.pair_value(0, 1), 5);
  EXPECT_EQ(inst.pair_value(1, 0), 5);
  EXPECT_EQ(inst.pair_value(0, 2), 0);
  EXPECT_EQ(inst.pair_value(1, 2), 7);
  EXPECT_EQ(inst.capacity(), 5);
  EXPECT_EQ(inst.weight(1), 3);
  // Semantics: profit of {0,1} = 10+20+5.
  EXPECT_EQ(inst.profit(std::vector<std::uint8_t>{1, 1, 0}), 35);
}

TEST(BillionnetIo, SingleItemInstanceHasEmptyTriangle) {
  std::stringstream ss("tiny\n1\n42\n0\n7\n3\n");
  const auto inst = load_qkp_billionnet(ss);
  EXPECT_EQ(inst.n(), 1u);
  EXPECT_EQ(inst.value(0), 42);
  EXPECT_EQ(inst.capacity(), 7);
  EXPECT_EQ(inst.weight(0), 3);
}

TEST(BillionnetIo, RejectsTruncatedFiles) {
  std::stringstream missing_triangle("x\n3\n1 2 3\n5\n");
  EXPECT_THROW(load_qkp_billionnet(missing_triangle), std::runtime_error);
  std::stringstream empty("");
  EXPECT_THROW(load_qkp_billionnet(empty), std::runtime_error);
  std::stringstream zero_n("x\n0\n");
  EXPECT_THROW(load_qkp_billionnet(zero_n), std::runtime_error);
}

TEST(OrLibIo, ParsesOneInstance) {
  // n=3 m=2 opt=99; values; 2x3 weights; capacities.
  std::stringstream ss(
      "3 2 99\n"
      "6 10 12\n"
      "1 2 3\n"
      "4 2 1\n"
      "4 5\n");
  std::int64_t opt = 0;
  const auto inst = load_mkp_orlib(ss, "mknapcb1-0", &opt);
  EXPECT_EQ(opt, 99);
  EXPECT_EQ(inst.name(), "mknapcb1-0");
  EXPECT_EQ(inst.n(), 3u);
  EXPECT_EQ(inst.m(), 2u);
  EXPECT_EQ(inst.value(2), 12);
  EXPECT_EQ(inst.weight(1, 0), 4);
  EXPECT_EQ(inst.capacity(1), 5);
  EXPECT_TRUE(inst.feasible(std::vector<std::uint8_t>{1, 0, 1}));
}

TEST(OrLibIo, ConsumesConcatenatedInstances) {
  // Two instances back to back, as in real mknapcb files (after the
  // leading count, which the caller strips).
  std::stringstream ss(
      "2 1 0\n"
      "5 6\n"
      "1 2\n"
      "2\n"
      "2 1 50\n"
      "7 8\n"
      "3 4\n"
      "5\n");
  std::int64_t opt_a = -1;
  std::int64_t opt_b = -1;
  const auto a = load_mkp_orlib(ss, "a", &opt_a);
  const auto b = load_mkp_orlib(ss, "b", &opt_b);
  EXPECT_EQ(opt_a, 0);
  EXPECT_EQ(opt_b, 50);
  EXPECT_EQ(a.value(0), 5);
  EXPECT_EQ(b.value(0), 7);
  EXPECT_EQ(b.capacity(0), 5);
}

TEST(OrLibIo, NullOptimumPointerIsAllowed) {
  std::stringstream ss("1 1 0\n9\n2\n4\n");
  const auto inst = load_mkp_orlib(ss, "x");
  EXPECT_EQ(inst.value(0), 9);
}

TEST(OrLibIo, RejectsBadHeaders) {
  std::stringstream garbage("hello");
  EXPECT_THROW(load_mkp_orlib(garbage, "x"), std::runtime_error);
  std::stringstream zero("0 1 0\n");
  EXPECT_THROW(load_mkp_orlib(zero, "x"), std::runtime_error);
  std::stringstream truncated("2 1 0\n5 6\n1\n");
  EXPECT_THROW(load_mkp_orlib(truncated, "x"), std::runtime_error);
}

// ----------------------------------------------------- filesystem overloads

TEST(BillionnetIo, LoadsFromFilePath) {
  const TempFile file("saim_qkp_billionnet.txt",
                      "jeu_io\n3\n10 20 30\n5 0\n7\n0\n5\n2 3 4\n");
  const auto inst = load_qkp_billionnet(file.path());
  EXPECT_EQ(inst.name(), "jeu_io");
  EXPECT_EQ(inst.n(), 3u);
  EXPECT_EQ(inst.pair_value(1, 2), 7);
}

TEST(BillionnetIo, MissingFileErrorNamesThePath) {
  const std::string path = "/nonexistent-dir-xyz/jeu_1.txt";
  try {
    load_qkp_billionnet(path);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
}

TEST(BillionnetIo, ParseErrorFromFileNamesThePath) {
  const TempFile file("saim_qkp_truncated.txt", "x\n3\n1 2 3\n");
  try {
    load_qkp_billionnet(file.path());
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(file.path()), std::string::npos) << what;
    EXPECT_NE(what.find("load_qkp_billionnet"), std::string::npos);
  }
}

TEST(OrLibIo, LoadsFromFilePathAndNamesInstanceAfterFile) {
  const TempFile file("mknapcb_unit.txt", "3 2 99\n6 10 12\n1 2 3\n4 2 1\n4 5\n");
  std::int64_t opt = 0;
  const auto inst = load_mkp_orlib(file.path(), &opt);
  EXPECT_EQ(opt, 99);
  EXPECT_EQ(inst.name(), "mknapcb_unit");  // basename, extension stripped
  EXPECT_EQ(inst.n(), 3u);
  EXPECT_EQ(inst.m(), 2u);
}

TEST(OrLibIo, MissingFileErrorNamesThePath) {
  EXPECT_THROW(
      {
        try {
          load_mkp_orlib("/nonexistent-dir-xyz/mknapcb1.txt");
        } catch (const std::runtime_error& e) {
          EXPECT_NE(
              std::string(e.what()).find("/nonexistent-dir-xyz/mknapcb1.txt"),
              std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST(NativeIo, FileOverloadsRoundTrip) {
  const auto qkp = make_paper_qkp(12, 50, 2);
  std::stringstream qs;
  save_qkp(qs, qkp);
  const TempFile qfile("saim_native.qkp", qs.str());
  const auto qkp_loaded = load_qkp(qfile.path());
  EXPECT_EQ(qkp_loaded.name(), qkp.name());
  EXPECT_EQ(qkp_loaded.capacity(), qkp.capacity());

  const auto mkp = make_paper_mkp(10, 3, 2);
  std::stringstream ms;
  save_mkp(ms, mkp);
  const TempFile mfile("saim_native.mkp", ms.str());
  const auto mkp_loaded = load_mkp(mfile.path());
  EXPECT_EQ(mkp_loaded.n(), mkp.n());
  EXPECT_EQ(mkp_loaded.m(), mkp.m());
  EXPECT_EQ(mkp_loaded.capacity(1), mkp.capacity(1));
}

}  // namespace
}  // namespace saim::problems
