#include "anneal/parallel_tempering.hpp"

#include <gtest/gtest.h>

namespace saim::anneal {
namespace {

ising::IsingModel spin_glass(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  ising::IsingModel model(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      model.add_coupling(i, j, rng.bernoulli(0.5) ? 1.0 : -1.0);
    }
  }
  return model;
}

double exact_ground_energy(const ising::IsingModel& model) {
  const std::size_t n = model.n();
  double best = 1e300;
  for (std::uint64_t code = 0; code < (1ULL << n); ++code) {
    ising::Spins m(n);
    for (std::size_t i = 0; i < n; ++i) {
      m[i] = (code >> i) & 1ULL ? std::int8_t{1} : std::int8_t{-1};
    }
    best = std::min(best, model.energy(m));
  }
  return best;
}

TEST(ParallelTempering, LadderIsGeometricAndOrdered) {
  const auto model = spin_glass(6, 1);
  PtOptions opts;
  opts.replicas = 5;
  opts.beta_min = 0.1;
  opts.beta_max = 10.0;
  ParallelTempering pt(model, opts);
  const auto ladder = pt.ladder();
  ASSERT_EQ(ladder.size(), 5u);
  EXPECT_NEAR(ladder.front(), 0.1, 1e-12);
  EXPECT_NEAR(ladder.back(), 10.0, 1e-9);
  for (std::size_t k = 1; k < ladder.size(); ++k) {
    EXPECT_GT(ladder[k], ladder[k - 1]);
    // Constant ratio between rungs.
    EXPECT_NEAR(ladder[k] / ladder[k - 1], ladder[1] / ladder[0], 1e-9);
  }
}

TEST(ParallelTempering, FindsSpinGlassGroundState) {
  const auto model = spin_glass(10, 7);
  const double exact = exact_ground_energy(model);
  PtOptions opts;
  opts.replicas = 8;
  opts.beta_min = 0.2;
  opts.beta_max = 5.0;
  opts.sweeps = 400;
  opts.swap_interval = 5;
  ParallelTempering pt(model, opts);
  util::Xoshiro256pp rng(3);
  const auto result = pt.run(rng);
  EXPECT_DOUBLE_EQ(result.best_energy, exact);
  EXPECT_NEAR(model.energy(result.best), result.best_energy, 1e-9);
}

TEST(ParallelTempering, SweepAccountingIncludesAllReplicas) {
  const auto model = spin_glass(6, 2);
  PtOptions opts;
  opts.replicas = 4;
  opts.sweeps = 50;
  ParallelTempering pt(model, opts);
  util::Xoshiro256pp rng(1);
  const auto result = pt.run(rng);
  EXPECT_EQ(result.sweeps, 200u);
}

TEST(ParallelTempering, SwapAcceptanceIsSane) {
  const auto model = spin_glass(8, 3);
  PtOptions opts;
  opts.replicas = 6;
  opts.sweeps = 200;
  opts.swap_interval = 2;
  ParallelTempering pt(model, opts);
  util::Xoshiro256pp rng(9);
  (void)pt.run(rng);
  EXPECT_GT(pt.last_swap_acceptance(), 0.0);
  EXPECT_LE(pt.last_swap_acceptance(), 1.0);
}

TEST(ParallelTempering, InvalidOptionsThrow) {
  const auto model = spin_glass(4, 4);
  PtOptions bad;
  bad.replicas = 1;
  EXPECT_THROW(ParallelTempering(model, bad), std::invalid_argument);
  PtOptions bad2;
  bad2.beta_min = -1.0;
  EXPECT_THROW(ParallelTempering(model, bad2), std::invalid_argument);
  PtOptions bad3;
  bad3.beta_min = 2.0;
  bad3.beta_max = 1.0;
  EXPECT_THROW(ParallelTempering(model, bad3), std::invalid_argument);
}

TEST(ParallelTempering, LastEnergyMatchesColdestReplicaState) {
  const auto model = spin_glass(8, 5);
  PtOptions opts;
  opts.replicas = 4;
  opts.sweeps = 100;
  ParallelTempering pt(model, opts);
  util::Xoshiro256pp rng(13);
  const auto result = pt.run(rng);
  EXPECT_NEAR(model.energy(result.last), result.last_energy, 1e-9);
}

TEST(PtBackend, RunBeforeBindThrows) {
  ParallelTemperingBackend backend(PtOptions{});
  util::Xoshiro256pp rng(1);
  EXPECT_THROW(backend.run(rng), std::logic_error);
}

TEST(PtBackend, SweepsPerRunAccountsReplicas) {
  PtOptions opts;
  opts.replicas = 26;
  opts.sweeps = 1000;
  ParallelTemperingBackend backend(opts);
  EXPECT_EQ(backend.sweeps_per_run(), 26000u);
  EXPECT_EQ(backend.name(), "parallel-tempering");
}

TEST(PtBackend, SolvesAfterBind) {
  const auto model = spin_glass(9, 11);
  const double exact = exact_ground_energy(model);
  PtOptions opts;
  opts.replicas = 6;
  opts.beta_min = 0.2;
  opts.beta_max = 5.0;
  opts.sweeps = 300;
  ParallelTemperingBackend backend(opts);
  backend.bind(model);
  util::Xoshiro256pp rng(2);
  EXPECT_DOUBLE_EQ(backend.run(rng).best_energy, exact);
}

}  // namespace
}  // namespace saim::anneal
