// Trajectory parity between the refactored backends (incremental
// LocalFieldState engine) and the recompute-every-visit sweep loops they
// replaced. One reference implementation of each backend's dynamics is
// kept here, transcribed from the pre-refactor code: the local field
// I_i = sum_j J_ij m_j + h_i is re-summed through the CSR on every visit
// and energies are accumulated exactly as the old loops did.
//
// On a model whose couplings, fields and all partial sums are dyadic
// rationals (multiples of 1/8 with bounded magnitude) every floating-point
// operation on both paths is exact, so the engines must reproduce the
// reference trajectories BIT-FOR-BIT: same RNG draws, same accept
// decisions, same final state and energy.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <numeric>
#include <utility>
#include <vector>

#include "anneal/parallel_tempering.hpp"
#include "anneal/simulated_annealing.hpp"
#include "anneal/sqa.hpp"
#include "anneal/tabu.hpp"
#include "ising/adjacency.hpp"
#include "ising/ising_model.hpp"
#include "pbit/pbit_machine.hpp"
#include "pbit/schedule.hpp"
#include "util/rng.hpp"

namespace saim {
namespace {

using ising::Adjacency;
using ising::IsingModel;
using ising::Spins;

/// Couplings and fields are multiples of 1/8 in [-2, 2]: every local-field
/// partial sum and energy stays an exactly-representable dyadic rational,
/// making incremental and recomputed arithmetic bit-identical.
IsingModel dyadic_model(std::size_t n, double density, std::uint64_t seed) {
  IsingModel model(n);
  util::Xoshiro256pp rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform01() < density) {
        const double w = static_cast<double>(rng.range(-16, 16)) / 8.0;
        if (w != 0.0) model.add_coupling(i, j, w);
      }
    }
    model.add_field(i, static_cast<double>(rng.range(-16, 16)) / 8.0);
  }
  return model;
}

Spins draw_state(std::size_t n, util::Xoshiro256pp& rng) {
  Spins m(n);
  for (auto& s : m) s = rng.bernoulli(0.5) ? std::int8_t{1} : std::int8_t{-1};
  return m;
}

/// Recompute-every-visit local field — the pattern all backends used.
double reference_input(const IsingModel& model, const Adjacency& adj,
                       const Spins& m, std::size_t i) {
  return adj.coupling_input(m, i) + model.field(i);
}

// ------------------------------------------------------------------ p-bit

struct RefAnneal {
  Spins last;
  double last_energy = 0.0;
  Spins best;
  double best_energy = 0.0;
};

RefAnneal reference_pbit(const IsingModel& model, const pbit::Schedule& sched,
                         std::size_t sweeps, bool track_best,
                         util::Xoshiro256pp& rng) {
  const Adjacency adj(model);
  RefAnneal result;
  result.last = draw_state(model.n(), rng);
  double energy = model.energy(result.last);
  if (track_best) {
    result.best = result.last;
    result.best_energy = energy;
  }
  for (std::size_t t = 0; t < sweeps; ++t) {
    const double beta = sched.beta(t, sweeps);
    double delta_energy = 0.0;
    for (std::size_t i = 0; i < model.n(); ++i) {
      const double in = reference_input(model, adj, result.last, i);
      const double activation = std::tanh(beta * in);
      const std::int8_t next =
          (activation + rng.uniform_sym()) >= 0.0 ? std::int8_t{1}
                                                  : std::int8_t{-1};
      if (next != result.last[i]) {
        delta_energy += 2.0 * static_cast<double>(result.last[i]) * in;
        result.last[i] = next;
      }
    }
    energy += delta_energy;
    if (track_best && energy < result.best_energy) {
      result.best_energy = energy;
      result.best = result.last;
    }
  }
  result.last_energy = energy;
  if (!track_best) {
    result.best = result.last;
    result.best_energy = energy;
  }
  return result;
}

TEST(LocalFieldParity, PBitMachineMatchesRecomputeReference) {
  const auto model = dyadic_model(40, 0.35, 11);
  const auto sched = pbit::Schedule::linear(4.0);

  pbit::PBitMachine machine(model);
  pbit::AnnealOptions opts;
  opts.sweeps = 120;
  opts.track_best = true;

  util::Xoshiro256pp rng_engine(99);
  const auto engine = machine.anneal(sched, opts, rng_engine);

  util::Xoshiro256pp rng_ref(99);
  const auto ref =
      reference_pbit(model, sched, opts.sweeps, opts.track_best, rng_ref);

  EXPECT_EQ(engine.last, ref.last);
  EXPECT_EQ(engine.last_energy, ref.last_energy);
  EXPECT_EQ(engine.best, ref.best);
  EXPECT_EQ(engine.best_energy, ref.best_energy);
  // Both consumed identical draw counts iff the streams are aligned.
  EXPECT_EQ(rng_engine(), rng_ref());
}

// ------------------------------------------------------------- Metropolis

RefAnneal reference_metropolis(const IsingModel& model,
                               const pbit::Schedule& sched,
                               std::size_t sweeps, util::Xoshiro256pp& rng) {
  const Adjacency adj(model);
  RefAnneal result;
  result.last = draw_state(model.n(), rng);
  double energy = model.energy(result.last);
  result.best = result.last;
  result.best_energy = energy;
  for (std::size_t t = 0; t < sweeps; ++t) {
    const double beta = sched.beta(t, sweeps);
    for (std::size_t i = 0; i < model.n(); ++i) {
      const double in = reference_input(model, adj, result.last, i);
      const double delta = 2.0 * static_cast<double>(result.last[i]) * in;
      if (delta <= 0.0 || rng.uniform01() < std::exp(-beta * delta)) {
        result.last[i] = static_cast<std::int8_t>(-result.last[i]);
        energy += delta;
      }
    }
    if (energy < result.best_energy) {
      result.best_energy = energy;
      result.best = result.last;
    }
  }
  result.last_energy = energy;
  return result;
}

TEST(LocalFieldParity, MetropolisSaMatchesRecomputeReference) {
  const auto model = dyadic_model(40, 0.35, 13);
  const auto sched = pbit::Schedule::linear(3.0);

  anneal::MetropolisSa sa(model);
  anneal::SaOptions opts;
  opts.sweeps = 150;
  opts.track_best = true;

  util::Xoshiro256pp rng_engine(7);
  const auto engine = sa.run(sched, opts, rng_engine);

  util::Xoshiro256pp rng_ref(7);
  const auto ref = reference_metropolis(model, sched, opts.sweeps, rng_ref);

  EXPECT_EQ(engine.last, ref.last);
  EXPECT_EQ(engine.last_energy, ref.last_energy);
  EXPECT_EQ(engine.best, ref.best);
  EXPECT_EQ(engine.best_energy, ref.best_energy);
  EXPECT_EQ(rng_engine(), rng_ref());
}

// ------------------------------------------------------ parallel tempering

RefAnneal reference_pt(const IsingModel& model,
                       const anneal::PtOptions& options,
                       util::Xoshiro256pp& rng) {
  const Adjacency adj(model);
  const std::size_t r = options.replicas;

  std::vector<double> betas(r);
  const double ratio = options.beta_max / options.beta_min;
  for (std::size_t k = 0; k < r; ++k) {
    betas[k] = options.beta_min *
               std::pow(ratio, static_cast<double>(k) /
                                   static_cast<double>(r - 1));
  }

  std::vector<Spins> states(r);
  std::vector<double> energies(r);
  for (std::size_t k = 0; k < r; ++k) {
    states[k] = draw_state(model.n(), rng);
    energies[k] = model.energy(states[k]);
  }

  RefAnneal result;
  std::size_t best_replica = 0;
  for (std::size_t k = 1; k < r; ++k) {
    if (energies[k] < energies[best_replica]) best_replica = k;
  }
  result.best = states[best_replica];
  result.best_energy = energies[best_replica];

  for (std::size_t t = 0; t < options.sweeps; ++t) {
    for (std::size_t k = 0; k < r; ++k) {
      for (std::size_t i = 0; i < model.n(); ++i) {
        const double in = reference_input(model, adj, states[k], i);
        const double delta = 2.0 * static_cast<double>(states[k][i]) * in;
        if (delta <= 0.0 ||
            rng.uniform01() < std::exp(-betas[k] * delta)) {
          states[k][i] = static_cast<std::int8_t>(-states[k][i]);
          energies[k] += delta;
        }
      }
      if (energies[k] < result.best_energy) {
        result.best_energy = energies[k];
        result.best = states[k];
      }
    }
    if ((t + 1) % options.swap_interval == 0) {
      const std::size_t parity = (t / options.swap_interval) % 2;
      for (std::size_t k = parity; k + 1 < r; k += 2) {
        const double arg =
            (betas[k] - betas[k + 1]) * (energies[k] - energies[k + 1]);
        if (arg >= 0.0 || rng.uniform01() < std::exp(arg)) {
          std::swap(states[k], states[k + 1]);
          std::swap(energies[k], energies[k + 1]);
        }
      }
    }
  }
  result.last = states[r - 1];
  result.last_energy = energies[r - 1];
  return result;
}

TEST(LocalFieldParity, ParallelTemperingMatchesRecomputeReference) {
  const auto model = dyadic_model(32, 0.35, 17);
  anneal::PtOptions opts;
  opts.replicas = 6;
  opts.beta_min = 0.2;
  opts.beta_max = 4.0;
  opts.sweeps = 80;
  opts.swap_interval = 5;

  anneal::ParallelTempering pt(model, opts);
  util::Xoshiro256pp rng_engine(21);
  const auto engine = pt.run(rng_engine);

  util::Xoshiro256pp rng_ref(21);
  const auto ref = reference_pt(model, opts, rng_ref);

  EXPECT_EQ(engine.last, ref.last);
  EXPECT_EQ(engine.last_energy, ref.last_energy);
  EXPECT_EQ(engine.best, ref.best);
  EXPECT_EQ(engine.best_energy, ref.best_energy);
  EXPECT_EQ(rng_engine(), rng_ref());
}

// ---------------------------------------------------------------------- SQA

RefAnneal reference_sqa(const IsingModel& model,
                        const anneal::SqaOptions& options,
                        util::Xoshiro256pp& rng) {
  const Adjacency adj(model);
  const std::size_t n = model.n();
  const std::size_t slices = options.trotter_slices;
  const auto m_d = static_cast<double>(slices);

  std::vector<Spins> state(slices);
  std::vector<double> classical_energy(slices);
  for (std::size_t k = 0; k < slices; ++k) {
    state[k] = draw_state(n, rng);
    classical_energy[k] = model.energy(state[k]);
  }

  RefAnneal result;
  std::size_t best_k = 0;
  for (std::size_t k = 1; k < slices; ++k) {
    if (classical_energy[k] < classical_energy[best_k]) best_k = k;
  }
  result.best = state[best_k];
  result.best_energy = classical_energy[best_k];

  const double ratio = options.gamma_end / options.gamma_start;
  for (std::size_t t = 0; t < options.sweeps; ++t) {
    const double frac =
        options.sweeps > 1 ? static_cast<double>(t) /
                                 static_cast<double>(options.sweeps - 1)
                           : 1.0;
    const double gamma = options.gamma_start * std::pow(ratio, frac);
    const double jt = std::tanh(options.beta * gamma / m_d);
    const double jperp = -0.5 / options.beta * std::log(jt);

    for (std::size_t k = 0; k < slices; ++k) {
      const std::size_t up = (k + 1) % slices;
      const std::size_t down = (k + slices - 1) % slices;
      for (std::size_t i = 0; i < n; ++i) {
        const double classical_in =
            reference_input(model, adj, state[k], i);
        const double classical_delta =
            2.0 * static_cast<double>(state[k][i]) * classical_in / m_d;
        const double quantum_delta =
            2.0 * jperp * static_cast<double>(state[k][i]) *
            (static_cast<double>(state[up][i]) +
             static_cast<double>(state[down][i]));
        const double delta = classical_delta + quantum_delta;
        if (delta <= 0.0 ||
            rng.uniform01() < std::exp(-options.beta * delta)) {
          classical_energy[k] +=
              2.0 * static_cast<double>(state[k][i]) * classical_in;
          state[k][i] = static_cast<std::int8_t>(-state[k][i]);
          if (classical_energy[k] < result.best_energy) {
            result.best_energy = classical_energy[k];
            result.best = state[k];
          }
        }
      }
    }
  }

  best_k = 0;
  for (std::size_t k = 1; k < slices; ++k) {
    if (classical_energy[k] < classical_energy[best_k]) best_k = k;
  }
  result.last = state[best_k];
  result.last_energy = classical_energy[best_k];
  return result;
}

TEST(LocalFieldParity, SqaMatchesRecomputeReference) {
  const auto model = dyadic_model(28, 0.35, 19);
  anneal::SqaOptions opts;
  opts.trotter_slices = 6;
  opts.beta = 4.0;
  opts.gamma_start = 2.0;
  opts.gamma_end = 0.05;
  opts.sweeps = 60;

  anneal::SimulatedQuantumAnnealer sqa(model, opts);
  util::Xoshiro256pp rng_engine(33);
  const auto engine = sqa.run(rng_engine);

  util::Xoshiro256pp rng_ref(33);
  const auto ref = reference_sqa(model, opts, rng_ref);

  EXPECT_EQ(engine.last, ref.last);
  EXPECT_EQ(engine.last_energy, ref.last_energy);
  EXPECT_EQ(engine.best, ref.best);
  EXPECT_EQ(engine.best_energy, ref.best_energy);
  EXPECT_EQ(rng_engine(), rng_ref());
}

// --------------------------------------------------------------------- tabu

RefAnneal reference_tabu(const IsingModel& model,
                         const anneal::TabuOptions& options,
                         util::Xoshiro256pp& rng) {
  const Adjacency adj(model);
  const std::size_t n = model.n();
  RefAnneal result;

  Spins state = draw_state(n, rng);
  double energy = model.energy(state);
  result.best = state;
  result.best_energy = energy;

  std::vector<double> delta(n);
  auto recompute_deltas = [&] {
    for (std::size_t i = 0; i < n; ++i) {
      delta[i] = model.flip_delta(state, i);
    }
  };
  recompute_deltas();

  std::vector<std::size_t> tabu_until(n, 0);
  std::size_t stall = 0;

  for (std::size_t step = 1; step <= options.steps; ++step) {
    std::size_t best_move = n;
    double best_delta = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      const bool is_tabu = tabu_until[i] >= step;
      const bool aspirated =
          is_tabu && energy + delta[i] < result.best_energy;
      if (is_tabu && !aspirated) continue;
      if (delta[i] < best_delta) {
        best_delta = delta[i];
        best_move = i;
      }
    }
    if (best_move == n) continue;

    const std::size_t j = best_move;
    energy += delta[j];
    state[j] = static_cast<std::int8_t>(-state[j]);
    tabu_until[j] = step + options.tenure;
    delta[j] = -delta[j];
    const auto nbr = adj.neighbors(j);
    const auto w = adj.weights(j);
    for (std::size_t k = 0; k < nbr.size(); ++k) {
      const std::size_t i = nbr[k];
      delta[i] += 4.0 * static_cast<double>(state[i]) * w[k] *
                  static_cast<double>(state[j]);
    }

    if (energy < result.best_energy - 1e-15) {
      result.best_energy = energy;
      result.best = state;
      stall = 0;
    } else if (options.stall_limit != 0 && ++stall >= options.stall_limit) {
      state = draw_state(n, rng);
      energy = model.energy(state);
      recompute_deltas();
      std::fill(tabu_until.begin(), tabu_until.end(), 0);
      stall = 0;
    }
  }

  result.last = state;
  result.last_energy = energy;
  return result;
}

TEST(LocalFieldParity, TabuMatchesRecomputeReference) {
  const auto model = dyadic_model(36, 0.35, 23);
  anneal::TabuOptions opts;
  opts.steps = 400;
  opts.tenure = 7;
  opts.stall_limit = 60;

  anneal::TabuSearch tabu(model, opts);
  util::Xoshiro256pp rng_engine(55);
  const auto engine = tabu.run(rng_engine);

  util::Xoshiro256pp rng_ref(55);
  const auto ref = reference_tabu(model, opts, rng_ref);

  EXPECT_EQ(engine.last, ref.last);
  EXPECT_EQ(engine.last_energy, ref.last_energy);
  EXPECT_EQ(engine.best, ref.best);
  EXPECT_EQ(engine.best_energy, ref.best_energy);
  EXPECT_EQ(rng_engine(), rng_ref());
}

}  // namespace
}  // namespace saim
