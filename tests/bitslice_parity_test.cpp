// Bit-exactness of the bit-sliced multi-replica engine against the scalar
// sweep engines — the contract that makes the run_batch dispatch and the
// fused solve_batch rounds pure performance policy. Parity is pinned on
// arbitrary (non-dyadic) random models, not just the dyadic ones the
// incremental-engine tests use: the engine mirrors every scalar fp
// expression operation for operation, so EQ on doubles is exact.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "anneal/backend.hpp"
#include "anneal/simulated_annealing.hpp"
#include "anneal/slice_driver.hpp"
#include "core/batch_solver.hpp"
#include "core/penalty_method.hpp"
#include "core/saim_solver.hpp"
#include "ising/bitslice.hpp"
#include "ising/ising_model.hpp"
#include "pbit/pbit_machine.hpp"
#include "pbit/schedule.hpp"
#include "problems/qkp.hpp"
#include "util/accept_bounds.hpp"
#include "util/rng.hpp"
#include "util/stop_token.hpp"

namespace saim {
namespace {

// Random couplings/fields — deliberately NOT dyadic, so every rounding in
// the sweep matters and parity failures cannot hide.
ising::IsingModel random_model(std::size_t n, std::uint64_t seed,
                               double density = 0.4) {
  ising::IsingModel model(n);
  util::Xoshiro256pp rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform01() < density) model.add_coupling(i, j, rng.uniform_sym());
    }
    model.add_field(i, 0.3 * rng.uniform_sym());
  }
  return model;
}

// Dyadic model: couplings/fields are small multiples of 1/8.
ising::IsingModel dyadic_model(std::size_t n, std::uint64_t seed) {
  ising::IsingModel model(n);
  util::Xoshiro256pp rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform01() < 0.5) {
        model.add_coupling(i, j, 0.125 * static_cast<double>(rng.range(-8, 8)));
      }
    }
    model.add_field(i, 0.125 * static_cast<double>(rng.range(-4, 4)));
  }
  return model;
}

struct ScalarRun {
  ising::Spins last;
  double last_energy;
  ising::Spins best;
  double best_energy;
  std::size_t sweeps;
};

// The scalar reference for lane r of a cold batch: the exact run_batch
// contract, one replica at a time.
std::vector<ScalarRun> scalar_pbit(const pbit::PBitMachine& machine,
                                   const pbit::Schedule& schedule,
                                   std::uint64_t base, std::size_t replicas,
                                   std::size_t sweeps, bool track_best,
                                   const std::vector<ising::Spins>& seeds) {
  pbit::AnnealOptions opts;
  opts.sweeps = sweeps;
  opts.track_best = track_best;
  std::vector<ScalarRun> out;
  for (std::size_t r = 0; r < replicas; ++r) {
    util::Xoshiro256pp rng(util::derive_seed(base, r));
    const bool seeded = r < seeds.size() && seeds[r].size() == machine.n();
    auto res = seeded ? machine.anneal_from(seeds[r], schedule, opts, rng)
                      : machine.anneal(schedule, opts, rng);
    out.push_back({res.last, res.last_energy, res.best, res.best_energy,
                   res.sweeps});
  }
  return out;
}

std::vector<ScalarRun> scalar_metropolis(
    const anneal::MetropolisSa& sa, const pbit::Schedule& schedule,
    std::uint64_t base, std::size_t replicas, std::size_t sweeps,
    bool track_best, const std::vector<ising::Spins>& seeds) {
  anneal::SaOptions opts;
  opts.sweeps = sweeps;
  opts.track_best = track_best;
  const std::size_t n = sa.model().n();
  std::vector<ScalarRun> out;
  for (std::size_t r = 0; r < replicas; ++r) {
    util::Xoshiro256pp rng(util::derive_seed(base, r));
    const bool seeded = r < seeds.size() && seeds[r].size() == n;
    auto res = seeded ? sa.run_from(seeds[r], schedule, opts, rng)
                      : sa.run(schedule, opts, rng);
    out.push_back({res.last, res.last_energy, res.best, res.best_energy,
                   res.sweeps});
  }
  return out;
}

std::vector<anneal::RunResult> sliced(const ising::IsingModel& model,
                                      const ising::Adjacency& adjacency,
                                      const pbit::Schedule& schedule,
                                      ising::SliceDynamics dynamics,
                                      std::uint64_t base, std::size_t replicas,
                                      std::size_t sweeps, bool track_best,
                                      const std::vector<ising::Spins>& seeds) {
  anneal::SlicePlan plan =
      anneal::make_slice_plan(model, base, replicas, seeds);
  const std::vector<double> betas = anneal::make_beta_table(schedule, sweeps);
  ising::SliceOptions so;
  so.dynamics = dynamics;
  so.betas = betas;
  so.track_best = track_best;
  auto split = anneal::run_slice_plans(adjacency, {&plan, 1}, so);
  return std::move(split.front());
}

void expect_lane_eq(const ScalarRun& s, const anneal::RunResult& e,
                    std::size_t r) {
  EXPECT_EQ(s.last, e.last) << "lane " << r;
  EXPECT_EQ(s.last_energy, e.last_energy) << "lane " << r;
  EXPECT_EQ(s.best, e.best) << "lane " << r;
  EXPECT_EQ(s.best_energy, e.best_energy) << "lane " << r;
  EXPECT_EQ(s.sweeps, e.sweeps) << "lane " << r;
}

// Replica counts straddling the word width: a partial chunk (5), a partial
// group with a partial chunk (37), and more than one group (70).
constexpr std::size_t kCounts[] = {5, 37, 70};

TEST(BitsliceParity, PbitColdLanesMatchScalarOnRandomModel) {
  const auto model = random_model(28, 11);
  const pbit::PBitMachine machine(model);
  const auto schedule = pbit::Schedule::linear(4.0);
  for (const std::size_t replicas : kCounts) {
    for (const bool track_best : {false, true}) {
      const auto ref = scalar_pbit(machine, schedule, 77, replicas, 40,
                                   track_best, {});
      const auto got =
          sliced(model, machine.adjacency(), schedule,
                 ising::SliceDynamics::kPbit, 77, replicas, 40, track_best, {});
      ASSERT_EQ(ref.size(), got.size());
      for (std::size_t r = 0; r < replicas; ++r) expect_lane_eq(ref[r], got[r], r);
    }
  }
}

TEST(BitsliceParity, MetropolisColdLanesMatchScalarOnRandomModel) {
  const auto model = random_model(30, 23);
  const anneal::MetropolisSa sa(model);
  const auto schedule = pbit::Schedule::linear(5.0);
  for (const std::size_t replicas : kCounts) {
    for (const bool track_best : {false, true}) {
      const auto ref = scalar_metropolis(sa, schedule, 99, replicas, 40,
                                         track_best, {});
      const auto got = sliced(model, sa.adjacency(), schedule,
                              ising::SliceDynamics::kMetropolis, 99, replicas,
                              40, track_best, {});
      ASSERT_EQ(ref.size(), got.size());
      for (std::size_t r = 0; r < replicas; ++r) expect_lane_eq(ref[r], got[r], r);
    }
  }
}

TEST(BitsliceParity, DyadicModelParityBothDynamics) {
  const auto model = dyadic_model(24, 5);
  const pbit::PBitMachine machine(model);
  const anneal::MetropolisSa sa(model);
  const auto schedule = pbit::Schedule::linear(3.0);
  const auto pref = scalar_pbit(machine, schedule, 3, 37, 30, true, {});
  const auto pgot = sliced(model, machine.adjacency(), schedule,
                           ising::SliceDynamics::kPbit, 3, 37, 30, true, {});
  for (std::size_t r = 0; r < 37; ++r) expect_lane_eq(pref[r], pgot[r], r);
  const auto mref = scalar_metropolis(sa, schedule, 4, 37, 30, true, {});
  const auto mgot =
      sliced(model, sa.adjacency(), schedule, ising::SliceDynamics::kMetropolis,
             4, 37, 30, true, {});
  for (std::size_t r = 0; r < 37; ++r) expect_lane_eq(mref[r], mgot[r], r);
}

TEST(BitsliceParity, WarmSeededLanesMatchScalar) {
  const auto model = random_model(26, 31);
  const pbit::PBitMachine machine(model);
  const anneal::MetropolisSa sa(model);
  const auto schedule = pbit::Schedule::linear(4.0);

  // Seed the first 3 of 36 replicas; the rest cold-start.
  std::vector<ising::Spins> seeds;
  util::Xoshiro256pp seed_rng(8);
  for (int k = 0; k < 3; ++k) {
    ising::Spins s(model.n());
    for (auto& v : s) v = seed_rng.bernoulli(0.5) ? 1 : -1;
    seeds.push_back(std::move(s));
  }

  const auto pref = scalar_pbit(machine, schedule, 55, 36, 35, true, seeds);
  const auto pgot = sliced(model, machine.adjacency(), schedule,
                           ising::SliceDynamics::kPbit, 55, 36, 35, true, seeds);
  for (std::size_t r = 0; r < 36; ++r) expect_lane_eq(pref[r], pgot[r], r);

  const auto mref = scalar_metropolis(sa, schedule, 56, 36, 35, true, seeds);
  const auto mgot =
      sliced(model, sa.adjacency(), schedule, ising::SliceDynamics::kMetropolis,
             56, 36, 35, true, seeds);
  for (std::size_t r = 0; r < 36; ++r) expect_lane_eq(mref[r], mgot[r], r);
}

// run_batch at 33+ replicas silently switches to the bit-sliced engine;
// the caller-visible results must be exactly what the scalar contract
// (replica r on derive_seed(base, r)) produces.
TEST(BitsliceParity, RunBatchDispatchIsInvisibleToCallers) {
  const auto model = random_model(25, 41);
  const auto schedule = pbit::Schedule::linear(4.0);

  anneal::PBitBackend pbit_backend(schedule, 30, pbit::SweepOrder::kSequential,
                                   true);
  pbit_backend.bind(model);
  util::Xoshiro256pp rng1(123);
  const auto batch = pbit_backend.run_batch(rng1, 33);
  ASSERT_EQ(batch.size(), 33u);

  util::Xoshiro256pp rng2(123);
  const std::uint64_t base = rng2();
  const pbit::PBitMachine machine(model);
  const auto ref = scalar_pbit(machine, schedule, base, 33, 30, true, {});
  for (std::size_t r = 0; r < 33; ++r) expect_lane_eq(ref[r], batch[r], r);
  // Both callers' streams must end at the same position.
  EXPECT_EQ(rng1(), rng2());

  anneal::MetropolisSaBackend sa_backend(schedule, 30, true);
  sa_backend.bind(model);
  util::Xoshiro256pp rng3(321);
  const auto sbatch = sa_backend.run_batch(rng3, 33);
  ASSERT_EQ(sbatch.size(), 33u);
  util::Xoshiro256pp rng4(321);
  const std::uint64_t sbase = rng4();
  const anneal::MetropolisSa sa(model);
  const auto sref = scalar_metropolis(sa, schedule, sbase, 33, 30, true, {});
  for (std::size_t r = 0; r < 33; ++r) expect_lane_eq(sref[r], sbatch[r], r);
  EXPECT_EQ(rng3(), rng4());
}

// A stop firing before the batch starts returns the empty batch the
// scalar path returns; one firing mid-run truncates every lane at the
// same between-sweep checkpoint, with valid partial results.
TEST(BitsliceParity, StopTokenSemantics) {
  const auto model = random_model(20, 51);
  const auto schedule = pbit::Schedule::linear(4.0);

  anneal::PBitBackend backend(schedule, 200, pbit::SweepOrder::kSequential,
                              true);
  backend.bind(model);

  util::StopSource pre;
  pre.request_stop();
  backend.set_stop_token(pre.token());
  util::Xoshiro256pp rng(7);
  EXPECT_TRUE(backend.run_batch(rng, 40).empty());
  // The base draw happens regardless of the stop, exactly as the scalar
  // path: the next caller sees the same stream position.
  util::Xoshiro256pp ref_rng(7);
  (void)ref_rng();
  EXPECT_EQ(rng(), ref_rng());

  // Mid-run: stop already set means the engine's first between-sweep poll
  // (t == stop_interval) truncates. Lanes agree on the truncation point
  // and their partial states are self-consistent.
  util::StopSource mid;
  mid.request_stop();
  const auto plan_model = model;
  const pbit::PBitMachine machine(plan_model);
  anneal::SlicePlan plan = anneal::make_slice_plan(plan_model, 9, 40, {});
  const auto betas = anneal::make_beta_table(schedule, 200);
  ising::SliceOptions so;
  so.dynamics = ising::SliceDynamics::kPbit;
  so.betas = betas;
  so.track_best = true;
  const auto token = mid.token();
  so.stop = &token;
  so.stop_interval = 16;
  auto split = anneal::run_slice_plans(machine.adjacency(), {&plan, 1}, so);
  const auto& runs = split.front();
  ASSERT_EQ(runs.size(), 40u);
  for (const auto& r : runs) {
    EXPECT_EQ(r.sweeps, 16u);  // truncated at the first poll
    // Incrementally tracked, so ulp-level drift vs a fresh dense sum is
    // expected (the scalar engine drifts identically — pinned below).
    EXPECT_NEAR(r.last_energy, plan_model.energy(r.last), 1e-9);
    EXPECT_LE(r.best_energy, r.last_energy);
  }

  // The truncated prefix must equal a scalar run over the same 16 sweeps.
  const auto ref = scalar_pbit(machine, schedule, 9, 3, 200, true, {});
  (void)ref;  // scalar has no 16-sweep variant; pin via a 16-sweep schedule:
  pbit::AnnealOptions opts;
  opts.sweeps = 200;
  opts.track_best = true;
  util::Xoshiro256pp lane0(util::derive_seed(9, 0));
  // Scalar engine truncated the same way via its own stop support.
  opts.stop = &token;
  opts.stop_interval = 16;
  const auto sres = machine.anneal(schedule, opts, lane0);
  EXPECT_EQ(sres.sweeps, 16u);
  EXPECT_EQ(sres.last, runs[0].last);
  EXPECT_EQ(sres.last_energy, runs[0].last_energy);
  EXPECT_EQ(sres.best, runs[0].best);
  EXPECT_EQ(sres.best_energy, runs[0].best_energy);
}

// Fused solve_batch rounds (one bit-sliced dispatch carrying every
// member's replicas) must be bit-identical to solo SaimSolver runs.
TEST(BitsliceParity, FusedBatchMembersMatchSoloSolves) {
  const auto instance = problems::make_paper_qkp(24, 50, 3);
  const auto converted = problems::qkp_to_problem(instance);
  const auto& problem = converted.problem;
  const auto evaluator = core::make_qkp_evaluator(instance);

  core::SaimOptions base_options;
  base_options.iterations = 8;
  base_options.replicas = 40;  // >= kBitsliceMinReplicas: fused + sliced
  base_options.eta = 10.0;

  std::vector<core::SaimOptions> member_options;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    core::SaimOptions o = base_options;
    o.seed = seed;
    o.iterations = 6 + static_cast<std::size_t>(seed);  // staggered drain
    o.record_history = (seed == 2);  // exercises the lambda re-apply path
    member_options.push_back(o);
  }

  std::vector<core::BatchJob> jobs;
  for (const auto& o : member_options) {
    core::BatchJob job;
    job.options = o;
    job.evaluator = evaluator;
    jobs.push_back(std::move(job));
  }
  anneal::PBitBackend batch_backend(pbit::Schedule::linear(4.0), 50,
                                    pbit::SweepOrder::kSequential, true);
  ASSERT_FALSE(batch_backend.supports_fused_batch());  // not bound yet
  const auto outcomes =
      core::solve_batch(problem, batch_backend, std::move(jobs));

  for (std::size_t j = 0; j < member_options.size(); ++j) {
    anneal::PBitBackend solo_backend(pbit::Schedule::linear(4.0), 50,
                                     pbit::SweepOrder::kSequential, true);
    core::SaimSolver solver(problem, solo_backend, member_options[j]);
    const auto solo = solver.solve(evaluator);

    const auto& fused = outcomes[j].result;
    EXPECT_TRUE(outcomes[j].error.empty()) << outcomes[j].error;
    EXPECT_EQ(fused.status, solo.status) << "member " << j;
    EXPECT_EQ(fused.best_cost, solo.best_cost) << "member " << j;
    EXPECT_EQ(fused.best_config, solo.best_config) << "member " << j;
    EXPECT_EQ(fused.feasible_count, solo.feasible_count) << "member " << j;
    EXPECT_EQ(fused.total_runs, solo.total_runs) << "member " << j;
    EXPECT_EQ(fused.total_sweeps, solo.total_sweeps) << "member " << j;
    ASSERT_EQ(fused.history.size(), solo.history.size()) << "member " << j;
    for (std::size_t k = 0; k < fused.history.size(); ++k) {
      EXPECT_EQ(fused.history[k].lagrangian_energy,
                solo.history[k].lagrangian_energy)
          << "member " << j << " iteration " << k;
      EXPECT_EQ(fused.history[k].lambda, solo.history[k].lambda)
          << "member " << j << " iteration " << k;
    }
  }
}

// The scalar engines now run the same tiered acceptance tests the
// bit-sliced engine uses (util/accept_bounds); the contract is that every
// tier decision is bit-identical to calling libm on the draw. Dense
// random sweeps plus the edges where tiers hand over: u = 0 (libm exp can
// underflow to exactly 0), u just above/below 2^-53, args in the
// tier-1-ambiguous band, deep-negative args, |x| straddling the tanh
// saturation threshold.
TEST(ScalarTieredAcceptance, ExpAcceptMatchesLibmEverywhere) {
  util::Xoshiro256pp rng(2024);
  for (int i = 0; i < 200000; ++i) {
    const double u = rng.uniform01();
    // Mix of typical Metropolis args (small negative) and extreme ones.
    const double scale = (i % 3 == 0) ? 800.0 : 8.0;
    const double arg = -scale * rng.uniform01();
    ASSERT_EQ(util::exp_accept(u, arg), u < std::exp(arg))
        << "u=" << u << " arg=" << arg;
  }
  // Edge draws: u carries no (or minimal) exponent information.
  for (const double u : {0.0, 0x1.0p-53, 0x1.0p-52, 0x1.fffffffffffffp-1}) {
    for (const double arg : {0.0, -1e-9, -0.5, -36.8, -700.0, -746.0,
                             -1000.0}) {
      ASSERT_EQ(util::exp_accept(u, arg), u < std::exp(arg))
          << "u=" << u << " arg=" << arg;
    }
  }
  // Args placed so u's biased exponent lands in the tier-1 ambiguous
  // band [r+1022, r+1023): the bounds/libm tiers must take over.
  for (int e = 1; e <= 60; ++e) {
    const double u = std::ldexp(1.0 + 1e-9, -e);  // exponent 1023 - e
    for (const double nudge : {-0.4, 0.0, 0.4}) {
      const double arg = (-e + nudge) * 0.6931471805599453094;
      ASSERT_EQ(util::exp_accept(u, arg), u < std::exp(arg))
          << "u=" << u << " arg=" << arg;
    }
  }
}

TEST(ScalarTieredAcceptance, TanhSignMatchesLibmEverywhere) {
  util::Xoshiro256pp rng(4048);
  for (int i = 0; i < 200000; ++i) {
    const double u = rng.uniform_sym();
    const double scale = (i % 3 == 0) ? 40.0 : 4.0;
    const double x = scale * rng.uniform_sym();
    ASSERT_EQ(util::tanh_sign_nonneg(x, u), std::tanh(x) + u >= 0.0)
        << "x=" << x << " u=" << u;
  }
  // The saturation handover and the ambiguous band next to ±1.
  for (const double x : {-25.0, -20.0, -19.999999, -1.0, -1e-12, 0.0,
                         1e-12, 1.0, 19.999999, 20.0, 25.0}) {
    for (const double u : {-1.0, -(1.0 - 0x1.0p-48), -(1.0 - 0x1.0p-49),
                           -0.5, 0.0, 0.5, 1.0 - 0x1.0p-49,
                           1.0 - 0x1.0p-48, 0x1.fffffffffffffp-1}) {
      ASSERT_EQ(util::tanh_sign_nonneg(x, u), std::tanh(x) + u >= 0.0)
          << "x=" << x << " u=" << u;
    }
  }
}

// Thread count must not change results: groups are independent.
TEST(BitsliceParity, ThreadCountInvariance) {
  const auto model = random_model(22, 61);
  const anneal::MetropolisSa sa(model);
  const auto schedule = pbit::Schedule::linear(5.0);
  const auto betas = anneal::make_beta_table(schedule, 30);

  auto run_with_threads = [&](std::size_t threads) {
    anneal::SlicePlan plan = anneal::make_slice_plan(model, 17, 130, {});
    ising::SliceOptions so;
    so.dynamics = ising::SliceDynamics::kMetropolis;
    so.betas = betas;
    so.track_best = true;
    so.threads = threads;
    return anneal::run_slice_plans(sa.adjacency(), {&plan, 1}, so);
  };
  const auto serial = run_with_threads(1);
  const auto parallel = run_with_threads(4);
  ASSERT_EQ(serial.front().size(), parallel.front().size());
  for (std::size_t r = 0; r < serial.front().size(); ++r) {
    EXPECT_EQ(serial.front()[r].last, parallel.front()[r].last);
    EXPECT_EQ(serial.front()[r].best_energy, parallel.front()[r].best_energy);
  }
}

}  // namespace
}  // namespace saim
